//! Hermetic shim of the `proptest` API subset this workspace uses:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, [`strategy::Strategy`] with `prop_map`,
//! integer/float range strategies, [`strategy::Just`], [`arbitrary::any`],
//! [`collection::vec`], strategy tuples, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via the assertion message and panics), and case generation is
//! seeded deterministically from the test name so every run explores the
//! same inputs — which suits a CI whose goal is reproducibility.

pub mod test_runner {
    /// Error a property body can return (via `prop_assert!`).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with message.
        Fail(String),
        /// Input rejected (not used by the shim's strategies, kept for
        /// API compatibility).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// RNG driving case generation.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Deterministic per-test RNG: seeded by FNV-1a of the test's name,
    /// so reruns explore identical inputs.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        <TestRng as rand::SeedableRng>::seed_from_u64(h)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A value generator. Unlike upstream there is no value tree /
    /// shrinking — `sample` draws one value.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from at least one arm.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+)),+ $(,)?) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, StandardSample};
    use std::marker::PhantomData;

    /// Strategy for `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: StandardSample> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// Uniformly distributed values of `T` (the shim supports the
    /// primitive types `rand`'s `StandardSample` covers).
    pub fn any<T: StandardSample>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: vectors with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest::prelude` mirror.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test harness: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut rng),)+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(e) => {
                        panic!("property {} failed at case {}/{}: {}",
                               stringify!($name), case + 1, config.cases, e);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -5i32..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn oneof_and_vec_compose(
            g in prop_oneof![Just(1u64), Just(8), Just(64)],
            v in crate::collection::vec(0u64..100, 1..50),
        ) {
            prop_assert!(g == 1 || g == 8 || g == 64);
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn prop_map_and_tuples(p in (0.5f64..1.5, 1u32..4).prop_map(|(a, b)| a * b as f64)) {
            prop_assert!(p > 0.0 && p < 6.0, "p = {p}");
        }

        #[test]
        fn any_draws_both_bools(flag in any::<bool>(), _x in any::<u64>()) {
            // Existence check only; distribution is covered in the rand shim.
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5..6);
        let mut r1 = crate::test_runner::rng_for("t");
        let mut r2 = crate::test_runner::rng_for("t");
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
