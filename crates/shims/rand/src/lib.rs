//! Hermetic shim of the `rand` API subset this workspace uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and [`SeedableRng`] with the standard splitmix64-based
//! `seed_from_u64` expansion.
//!
//! The workspace pins every RNG to `rand_chacha::ChaCha8Rng` with fixed
//! seeds, so the only properties that matter are determinism and decent
//! statistical quality — both provided by the real ChaCha8 core in the
//! `rand_chacha` shim.  Streams differ from upstream `rand 0.8` (the
//! exact value sequences were never part of this repo's contracts).

/// Core RNG interface: uniformly random raw words.
pub trait RngCore {
    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let w = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&w[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG's raw words (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1), as upstream.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable uniformly (the shim's stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans this workspace draws.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range");
                if s == 0 && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i64 + hi as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (s..e + 1).sample_from(rng)
            }
        }
    )*};
}
impl_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                let u = <$t as StandardSample>::sample(rng);
                s + u * (e - s)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] exactly as upstream does.
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable RNGs.
pub trait SeedableRng: Sized {
    /// The raw seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with splitmix64 (same expansion
    /// as upstream `rand_core`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len().min(8);
            chunk[..n].copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// `rand::rngs` namespace placeholder (nothing from it is used, but the
/// module existing keeps `use rand::rngs::...` lines compiling if added).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence — uniform enough to test plumbing.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(2);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(5usize..6);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
