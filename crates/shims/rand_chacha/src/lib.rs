//! Hermetic shim of `rand_chacha`: [`ChaCha8Rng`] implemented with the
//! genuine ChaCha stream cipher core (8 rounds, RFC 7539 block layout),
//! so the workspace's fixed-seed RNGs keep real statistical quality.
//!
//! Output streams are *not* bit-identical to upstream `rand_chacha 0.3`
//! (block counter handling differs); nothing in the workspace depends on
//! the exact sequences, only on determinism for a given seed.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// Deterministic ChaCha8-based RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state template: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_fill_the_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<f64> = (0..4096).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        // Both halves of the interval are hit often.
        let low = xs.iter().filter(|&&x| x < 0.5).count();
        assert!(low > 1600 && low < 2500, "low {low}");
    }

    #[test]
    fn zero_counter_blocks_differ() {
        // Consecutive blocks of the keystream must differ.
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }
}
