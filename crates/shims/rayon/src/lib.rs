//! Hermetic shim of the `rayon` API subset this workspace uses:
//! `Vec::into_par_iter()` / slice `par_iter()` with `map` / `filter_map`
//! / `for_each` / `collect`, plus [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`] for scoping the worker count.
//!
//! Execution model: each eager combinator fans the items out to `N`
//! OS threads pulling indices from a shared atomic counter (work
//! stealing at item granularity), then reassembles results **in item
//! order** — so output order never depends on scheduling, which is the
//! determinism contract the sweep runner builds on.  `N` comes from the
//! innermost [`ThreadPool::install`], else `MEMHIER_JOBS`, else
//! `available_parallelism`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker count installed by the innermost `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Default worker count: `MEMHIER_JOBS` env override, else the host's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|c| c.get());
    if installed > 0 {
        return installed;
    }
    if let Ok(v) = std::env::var("MEMHIER_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(item)` for every item of `items` on `threads` workers pulling
/// from a shared index; results are returned in item order.
fn ordered_parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    // Hand items out through Option slots so workers can take them by index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let next = &next;
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return out;
                        }
                        let item = slots[i].lock().unwrap().take().expect("item taken once");
                        out.push((i, f(item)));
                    }
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("rayon shim worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// An eager "parallel iterator" holding its items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map preserving item order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: ordered_parallel_map(self.items, current_num_threads(), f),
        }
    }

    /// Parallel filter-map preserving item order.
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        let mapped = ordered_parallel_map(self.items, current_num_threads(), f);
        ParIter {
            items: mapped.into_iter().flatten().collect(),
        }
    }

    /// Parallel for-each (order of side effects unspecified, as upstream).
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        ordered_parallel_map(self.items, current_num_threads(), |t| f(t));
    }

    /// Collect into any container buildable from an ordered `Vec`.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        C::from(self.items)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Borrowing parallel iteration (`.par_iter()` on slices/Vecs).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send;
    /// Iterate over `&self` in parallel.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Build error (the shim never fails to build).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical pool: the shim spawns scoped threads per operation, so the
/// pool only carries the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's width governing every parallel
    /// operation it performs (restores the previous width after).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        let out = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        out
    }
}

/// `rayon::prelude` mirror.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// `rayon::iter` namespace mirror (re-exports the same types).
pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..500).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order_and_filters() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        assert_eq!(out, (0..100).filter(|x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_width() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u32, 2, 3];
        let s: u32 = v.par_iter().map(|&x| x).collect::<Vec<u32>>().iter().sum();
        assert_eq!(s, 6);
    }

    #[test]
    fn uneven_work_still_ordered() {
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..64usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|i| {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i
                })
                .collect()
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
