//! Hermetic shim of the `serde` API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, behavior-compatible implementations of its external
//! dependencies under `crates/shims/`.  This crate provides:
//!
//! * [`Serialize`] — a single-method trait producing a JSON [`Value`]
//!   tree (the only serialization format the workspace emits);
//! * [`Deserialize`] — the inverse conversion, used by the sweep
//!   checkpoint journal to load typed records back out of JSONL;
//! * `#[derive(Serialize)]` / `#[derive(Deserialize)]` re-exported from
//!   the companion `serde_derive` proc-macro crate, covering named-field
//!   structs and unit-variant enums (the only shapes the workspace
//!   derives on).
//!
//! The JSON [`Value`] tree lives here (not in `serde_json`) so both
//! crates can share it without a dependency cycle; `serde_json`
//! re-exports it as `serde_json::Value`.

pub use serde_derive::{Deserialize, Serialize};

/// Shared JSON value tree, re-exported by `serde_json` as its `Value`.
pub mod __private {
    /// A JSON number: integers keep their exact representation, as in
    /// upstream `serde_json`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Signed integer (only produced for negative values).
        I64(i64),
        /// Unsigned integer.
        U64(u64),
        /// Floating point.
        F64(f64),
    }

    impl Number {
        /// Lossy conversion to `f64`.
        pub fn as_f64(&self) -> f64 {
            match *self {
                Number::I64(v) => v as f64,
                Number::U64(v) => v as f64,
                Number::F64(v) => v,
            }
        }
    }

    /// A JSON document. Object keys keep insertion order, matching the
    /// field order of derived structs (upstream serde_json with
    /// `preserve_order` — and deterministic output either way).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Number(Number),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object (insertion-ordered).
        Object(Vec<(String, Value)>),
    }

    // The accessor/indexing surface lives here (with the type) because
    // coherence forbids `serde_json` adding inherent impls; `serde_json`
    // re-exports `Value`, so callers see the upstream API.
    impl Value {
        /// Object field lookup (`None` for non-objects / missing keys).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Array element lookup.
        pub fn get_index(&self, i: usize) -> Option<&Value> {
            match self {
                Value::Array(a) => a.get(i),
                _ => None,
            }
        }

        /// As `f64` if this is any number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(n.as_f64()),
                _ => None,
            }
        }

        /// As `i64` if this is an integer that fits.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Number(Number::I64(v)) => Some(*v),
                Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
                _ => None,
            }
        }

        /// As `u64` if this is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Number(Number::U64(v)) => Some(*v),
                Value::Number(Number::I64(v)) => u64::try_from(*v).ok(),
                _ => None,
            }
        }

        /// As string slice.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        /// As bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// As array slice.
        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        /// Whether this is `null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            static NULL: Value = Value::Null;
            self.get(key).unwrap_or(&NULL)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, i: usize) -> &Value {
            static NULL: Value = Value::Null;
            self.get_index(i).unwrap_or(&NULL)
        }
    }
}

use __private::{Number, Value};

/// Types that can be turned into a JSON [`Value`].
///
/// Upstream serde abstracts over serializer back-ends; this workspace
/// only ever serializes to JSON, so the shim collapses the trait to the
/// one conversion actually exercised.
pub trait Serialize {
    /// Convert `self` to a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
///
/// Upstream serde abstracts over deserializer back-ends; this workspace
/// only ever parses JSON, so the shim collapses the trait to the one
/// conversion actually exercised.  Derived impls treat a missing object
/// key as `null` (so `Option` fields tolerate absent keys) and reject
/// shape mismatches with a path-qualified error.
pub trait Deserialize: Sized {
    /// Build `Self` from a parsed JSON value.
    fn from_json_value(v: Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: Value) -> Result<Self, String> {
        Ok(v)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::I64(v))
                } else {
                    Value::Number(Number::U64(v as u64))
                }
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}
impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )+};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: Value) -> Result<Self, String> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| format!("expected {}, got {v:?}", stringify!($t)))
            }
        }
    )*};
}
macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: Value) -> Result<Self, String> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| format!("expected {}, got {v:?}", stringify!($t)))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(v: Value) -> Result<Self, String> {
        v.as_f64().ok_or_else(|| format!("expected f64, got {v:?}"))
    }
}
impl Deserialize for f32 {
    fn from_json_value(v: Value) -> Result<Self, String> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| format!("expected f32, got {v:?}"))
    }
}
impl Deserialize for bool {
    fn from_json_value(v: Value) -> Result<Self, String> {
        v.as_bool()
            .ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}
impl Deserialize for String {
    fn from_json_value(v: Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}
impl Deserialize for char {
    fn from_json_value(v: Value) -> Result<Self, String> {
        match v {
            Value::String(ref s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, got {other:?}")),
        }
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: Value) -> Result<Self, String> {
        T::from_json_value(v).map(Box::new)
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.into_iter().map(T::from_json_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: Value) -> Result<Self, String> {
        let items = Vec::<T>::from_json_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got length {got}"))
    }
}

macro_rules! impl_de_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: Value) -> Result<Self, String> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        let mut it = items.into_iter();
                        Ok(($(
                            $t::from_json_value(it.next().expect("length checked"))
                                .map_err(|e| format!("tuple element {}: {e}", $n))?,
                        )+))
                    }
                    other => Err(format!("expected array of length {LEN}, got {other:?}")),
                }
            }
        }
    )+};
}
impl_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: Value) -> Result<Self, String> {
        match v {
            Value::Object(fields) => fields
                .into_iter()
                .map(|(k, v)| V::from_json_value(v).map(|v| (k, v)))
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(5u32.to_json_value(), Value::Number(Number::U64(5)));
        assert_eq!((-3i64).to_json_value(), Value::Number(Number::I64(-3)));
        assert_eq!(2i64.to_json_value(), Value::Number(Number::U64(2)));
        assert_eq!(true.to_json_value(), Value::Bool(true));
        assert_eq!("x".to_json_value(), Value::String("x".into()));
        assert_eq!(Option::<u8>::None.to_json_value(), Value::Null);
    }

    #[test]
    fn compound_shapes() {
        let v = vec![(1u64, "a".to_string())].to_json_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::String("a".into())
            ])])
        );
        let arr = [1.0f64, 2.0].to_json_value();
        assert!(matches!(arr, Value::Array(ref a) if a.len() == 2));
    }

    #[test]
    fn primitives_deserialize_back() {
        let round = |v: Value| v;
        assert_eq!(u32::from_json_value(round(5u32.to_json_value())), Ok(5));
        assert_eq!(i64::from_json_value(round((-3i64).to_json_value())), Ok(-3));
        assert_eq!(f64::from_json_value(round(1.5f64.to_json_value())), Ok(1.5));
        // Integer-typed JSON numbers satisfy f64 fields.
        assert_eq!(f64::from_json_value(Value::Number(Number::U64(7))), Ok(7.0));
        assert_eq!(bool::from_json_value(Value::Bool(true)), Ok(true));
        assert_eq!(
            String::from_json_value(Value::String("x".into())),
            Ok("x".to_string())
        );
        // Range and shape violations are errors, not truncations.
        assert!(u8::from_json_value(Value::Number(Number::U64(300))).is_err());
        assert!(u64::from_json_value(Value::Number(Number::I64(-1))).is_err());
        assert!(bool::from_json_value(Value::Null).is_err());
    }

    #[test]
    fn containers_deserialize_back() {
        assert_eq!(
            Option::<u64>::from_json_value(Value::Null),
            Ok(None),
            "null is None"
        );
        assert_eq!(
            Option::<u64>::from_json_value(Value::Number(Number::U64(4))),
            Ok(Some(4))
        );
        let v = vec![1u64, 2, 3].to_json_value();
        assert_eq!(Vec::<u64>::from_json_value(v), Ok(vec![1, 2, 3]));
        let t = (1u64, "a".to_string()).to_json_value();
        assert_eq!(
            <(u64, String)>::from_json_value(t),
            Ok((1, "a".to_string()))
        );
        let a = [1u64, 2].to_json_value();
        assert_eq!(<[u64; 2]>::from_json_value(a.clone()), Ok([1, 2]));
        assert!(<[u64; 3]>::from_json_value(a).is_err());
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(
            std::collections::BTreeMap::<String, u64>::from_json_value(m.to_json_value()),
            Ok(m)
        );
    }
}
