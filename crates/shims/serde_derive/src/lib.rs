//! Hermetic shim of serde's `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implemented directly on `proc_macro::TokenStream` (the sandbox has no
//! `syn`/`quote`).  Supports exactly the item shapes this workspace
//! derives on:
//!
//! * structs with named fields (any visibility, attributes ignored) —
//!   serialized as a JSON object in declaration order;
//! * enums whose variants are all unit variants — serialized as the
//!   variant name string (serde's externally-tagged representation for
//!   unit variants).
//!
//! Anything else produces a compile error naming the limitation, so a
//! future refactor that introduces an unsupported shape fails loudly
//! instead of mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Skip one attribute (`#` followed by a bracket group) if present.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        tokens.next();
                    }
                    _ => return,
                }
            }
            _ => return,
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut t = input.into_iter().peekable();
    skip_attrs(&mut t);
    skip_vis(&mut t);
    let kind = match t.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match t.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    // Reject generics: the workspace derives only on concrete types.
    if let Some(TokenTree::Punct(p)) = t.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim: generic type `{name}` is not supported"
            ));
        }
    }
    let body = loop {
        match t.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim: tuple struct `{name}` is not supported"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("serde shim: `{name}` has no braced body")),
        }
    };
    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            let mut inner = body.stream().into_iter().peekable();
            loop {
                skip_attrs(&mut inner);
                skip_vis(&mut inner);
                match inner.next() {
                    Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                    None => break,
                    other => return Err(format!("unexpected token in `{name}`: {other:?}")),
                }
                // Skip past the `:` and the type tokens up to a top-level comma.
                let mut depth = 0i32;
                loop {
                    match inner.next() {
                        Some(TokenTree::Punct(p)) => {
                            let c = p.as_char();
                            if c == '<' {
                                depth += 1;
                            } else if c == '>' {
                                depth -= 1;
                            } else if c == ',' && depth <= 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
            }
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            let mut inner = body.stream().into_iter().peekable();
            loop {
                skip_attrs(&mut inner);
                match inner.next() {
                    Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
                    None => break,
                    other => return Err(format!("unexpected token in `{name}`: {other:?}")),
                }
                match inner.next() {
                    // Unit variant followed by the separating comma (or end).
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    None => break,
                    Some(_) => {
                        return Err(format!(
                            "serde shim: enum `{name}` has a data-carrying variant; only unit \
                             enums are supported"
                        ));
                    }
                }
            }
            Ok(Item::UnitEnum { name, variants })
        }
        other => Err(format!("serde shim: cannot derive on `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_json_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::__private::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, \
                              ::serde::__private::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::__private::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::__private::Value::String({v:?}.to_string()),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::__private::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}

/// Derive `serde::Deserialize` (shim).
///
/// Structs deserialize from a JSON object: each field is looked up by
/// name (a missing key reads as `null`, so `Option` fields tolerate
/// absent keys) and errors are qualified with `Type.field`.  Unit enums
/// deserialize from their variant-name string.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: {{\n\
                             let __fv = __fields\n\
                                 .iter()\n\
                                 .find(|(k, _)| k == {f:?})\n\
                                 .map(|(_, v)| v.clone())\n\
                                 .unwrap_or(::serde::__private::Value::Null);\n\
                             ::serde::Deserialize::from_json_value(__fv)\n\
                                 .map_err(|e| ::std::format!(\"{name}.{f}: {{e}}\"))?\n\
                         }},\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(\n\
                         __v: ::serde::__private::Value,\n\
                     ) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match __v {{\n\
                             ::serde::__private::Value::Object(__fields) => Ok({name} {{\n\
                                 {inits}\
                             }}),\n\
                             __other => ::std::result::Result::Err(::std::format!(\n\
                                 \"expected object for {name}, got {{__other:?}}\"\n\
                             )),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(\n\
                         __v: ::serde::__private::Value,\n\
                     ) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match __v {{\n\
                             ::serde::__private::Value::String(__s) => match __s.as_str() {{\n\
                                 {arms}\
                                 __other => ::std::result::Result::Err(::std::format!(\n\
                                     \"unknown {name} variant `{{__other}}`\"\n\
                                 )),\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::std::format!(\n\
                                 \"expected string for {name}, got {{__other:?}}\"\n\
                             )),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().unwrap()
}
