//! Hermetic shim of the `serde_json` API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`Value`] with
//! accessors, and the [`json!`] macro (object-literal form with
//! expression values).
//!
//! Output format matches upstream serde_json closely enough for the
//! workspace's artifacts: 2-space pretty indentation, insertion-ordered
//! object keys, non-finite floats serialized as `null`, and shortest
//! round-trip float formatting.

pub use serde::__private::{Number, Value};
use serde::Serialize;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for Error {}

/// `Result` alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_into(n: &Number, out: &mut String) {
    match *n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip form and always
                // carries a `.0`/exponent marker, matching serde_json's
                // float-typed output.
                out.push_str(&format!("{v:?}"));
            } else {
                // Upstream serde_json serializes non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => number_into(n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, e)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(e, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_json_value(), &mut out);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{} at byte {}", msg, self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => self.err("unexpected character"),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("invalid literal (expected `{lit}`)"))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let str_rest =
                        std::str::from_utf8(rest).map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = str_rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::F64(v)))
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|v| Value::Number(Number::I64(v)))
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(|v| Value::Number(Number::U64(v)))
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

/// Parse a JSON document.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    T::from_json_value(v).map_err(Error)
}

/// Build a [`Value`] object/array/scalar literal.  Supports the forms the
/// workspace uses: `json!({"k": expr, ...})`, `json!([expr, ...])`, and
/// `json!(expr)` where `expr: Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($k.to_string(), $crate::to_value(&$v).unwrap())),*
        ])
    };
    ([ $($e:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::to_value(&$e).unwrap()),*])
    };
    ($e:expr) => { $crate::to_value(&$e).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({"a": 1u64, "b": json!([1.5f64, -2i64]), "s": "x\"y"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_is_stable_and_parseable() {
        let v = json!({"outer": vec![1u64, 2, 3], "n": 1.0f64});
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains("  \"outer\": [\n    1,"));
        let back: Value = from_str(&p).unwrap();
        assert_eq!(back["n"].as_f64(), Some(1.0));
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn value_accessors() {
        let v: Value = from_str(r#"{"x": [10, "s", true, null], "y": -3}"#).unwrap();
        assert_eq!(v["x"][0].as_u64(), Some(10));
        assert_eq!(v["x"][1].as_str(), Some("s"));
        assert_eq!(v["x"][2].as_bool(), Some(true));
        assert!(v["x"][3].is_null());
        assert_eq!(v["y"].as_i64(), Some(-3));
        assert!(v.get("missing").is_none());
    }
}
