//! The unified memory-system back-end.
//!
//! One implementation covers the paper's five back-ends as configurations
//! of [`ClusterBackend`]:
//!
//! * **SMP** (`N = 1`, `n ≥ 1`): per-processor L1 caches kept coherent by a
//!   snooping write-invalidate protocol over the memory bus; disks behind
//!   an LRU page-residency model on the I/O bus.
//! * **Cluster of workstations** (`n = 1`, `N > 1`): a directory protocol
//!   at 256-byte blocks (states Uncached / Shared / Exclusive, §5.1) over a
//!   bus or switch network; each node's local memory doubles as an LRU
//!   cache of remote blocks (the paper's "local memory absorbs most of the
//!   references to the higher level").
//! * **Cluster of SMPs**: the hybrid protocol — snooping inside a node,
//!   directory between nodes, with the directory extended by processor ids
//!   (here: per-node sharer bitmask + per-processor caches probed on
//!   arrival).
//!
//! Latencies are the §5.1 cycle costs; shared media (node memory bus,
//! cluster network, I/O bus) are [`Resource`]s whose queueing produces the
//! contention the analytic model approximates with M/D/1.

use crate::cache::{LineState, SetAssocCache};
use crate::dirtable::{DirEntry, DirTable};
use crate::homemap::HomeMap;
use crate::report::{LevelCounts, Traffic};
use crate::util::{LruSet, Resource};
use memhier_core::machine::{LatencyParams, NetworkKind, NetworkTopology};
use memhier_core::platform::ClusterSpec;

/// Protocol geometry (§5.1 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolParams {
    /// L1 cache line size (64 bytes).
    pub line_bytes: u64,
    /// L1 associativity (2-way).
    pub ways: usize,
    /// Inter-node coherence block (256 bytes).
    pub block_bytes: u64,
    /// Disk-residency page size.
    pub page_bytes: u64,
    /// Size in bytes of a coherence control message (invalidate, ack,
    /// upgrade) for traffic accounting.
    pub ctrl_msg_bytes: u64,
}

impl Default for ProtocolParams {
    fn default() -> Self {
        ProtocolParams {
            line_bytes: 64,
            ways: 2,
            block_bytes: 256,
            page_bytes: 4096,
            ctrl_msg_bytes: 8,
        }
    }
}

/// One machine of the cluster.
struct Node {
    /// The SMP memory buses, one per NUMA domain (a single element on flat
    /// machines — also the path to local memory for n = 1).
    buses: Vec<Resource>,
    /// The I/O bus / disk.
    io: Resource,
    /// Local memory acting as an LRU cache of remote blocks.
    remote_cache: LruSet<u64>,
    /// Resident pages of locally-homed data.
    residency: LruSet<u64>,
}

/// The unified cluster memory-system simulator.
pub struct ClusterBackend {
    lat: LatencyParams,
    params: ProtocolParams,
    clock_hz: f64,
    /// `lat.cache_hit` pre-truncated to cycles — the L1-hit fast path must
    /// not pay a float conversion per reference.
    hit_lat: u64,
    /// `log2(params.block_bytes)` / `log2(params.page_bytes)`: block and
    /// page numbers are shifts, not divisions, on the miss path.
    block_shift: u32,
    page_shift: u32,
    n_per_node: usize,
    nodes: Vec<Node>,
    /// Per-processor L1 caches, indexed globally (`proc = node·n + local`).
    caches: Vec<SetAssocCache>,
    /// Directory over inter-node blocks (cluster platforms only), stored
    /// flat and tiled (`dirtable.rs`) so miss-path probes stay on two
    /// host cache lines.
    directory: DirTable,
    home: HomeMap,
    net_kind: Option<NetworkKind>,
    /// The shared medium for bus networks.
    net_bus: Resource,
    /// Per-node ports for switch and fat-tree networks.
    ports: Vec<Resource>,
    /// Per-rack uplinks for fat-tree networks (empty otherwise).
    uplinks: Vec<Resource>,
    /// NUMA domains per node (1 = flat).
    numa_domains: usize,
    /// Extra cycles for a cross-domain memory access.
    numa_penalty: u64,
    counts: LevelCounts,
    traffic: Traffic,
}

impl ClusterBackend {
    /// Build a backend for `cluster` with the given home map (use
    /// `HomeMap::new(N, 256)` for interleaved homes when the workload does
    /// not register partitions).
    pub fn new(cluster: &ClusterSpec, lat: LatencyParams, home: HomeMap) -> Self {
        Self::with_params(cluster, lat, home, ProtocolParams::default())
    }

    /// As [`ClusterBackend::new`] with explicit protocol geometry.
    pub fn with_params(
        cluster: &ClusterSpec,
        lat: LatencyParams,
        home: HomeMap,
        params: ProtocolParams,
    ) -> Self {
        cluster.validate().expect("invalid cluster spec");
        assert!(
            params.block_bytes.is_power_of_two() && params.page_bytes.is_power_of_two(),
            "protocol block and page sizes must be powers of two"
        );
        let n = cluster.machine.n_procs as usize;
        let nn = cluster.machines as usize;
        assert_eq!(home.nodes(), nn, "home map must cover every node");
        let mem = cluster.machine.memory_bytes;
        let numa_domains = cluster.machine.numa_domains() as usize;
        let numa_penalty = cluster
            .machine
            .numa
            .map(|nu| nu.remote_penalty_cycles as u64)
            .unwrap_or(0);
        let racks = match cluster.network.map(|k| k.spec().machines_per_rack) {
            Some(per_rack) if per_rack > 0 => nn.div_ceil(per_rack as usize),
            _ => 0,
        };
        let nodes = (0..nn)
            .map(|_| Node {
                buses: (0..numa_domains).map(|_| Resource::new()).collect(),
                io: Resource::new(),
                // Half the memory is available for caching remote blocks;
                // the other half holds the locally-homed partition.
                remote_cache: LruSet::new((mem / 2 / params.block_bytes).max(1) as usize),
                residency: LruSet::new((mem / params.page_bytes).max(1) as usize),
            })
            .collect();
        let caches = (0..n * nn)
            .map(|_| {
                SetAssocCache::new(cluster.machine.cache_bytes, params.ways, params.line_bytes)
            })
            .collect();
        ClusterBackend {
            hit_lat: lat.cache_hit as u64,
            block_shift: params.block_bytes.trailing_zeros(),
            page_shift: params.page_bytes.trailing_zeros(),
            lat,
            params,
            clock_hz: cluster.machine.clock_hz,
            n_per_node: n,
            nodes,
            caches,
            directory: DirTable::default(),
            home,
            net_kind: cluster.network,
            net_bus: Resource::new(),
            ports: (0..nn).map(|_| Resource::new()).collect(),
            uplinks: (0..racks).map(|_| Resource::new()).collect(),
            numa_domains,
            numa_penalty,
            counts: LevelCounts::default(),
            traffic: Traffic::default(),
        }
    }

    /// Total processors simulated.
    pub fn total_procs(&self) -> usize {
        self.caches.len()
    }

    /// The machine clock (for converting cycles to seconds).
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Level service counts so far.
    pub fn counts(&self) -> LevelCounts {
        self.counts
    }

    /// Traffic breakdown so far.
    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    /// Busy cycles of each node's memory bus (index = node id; NUMA domain
    /// buses summed per node) — divide by the wall clock for utilization,
    /// the simulator-side counterpart of the model's M/D/1 utilization per
    /// level.
    pub fn bus_busy_cycles(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.buses.iter().map(|b| b.busy_cycles()).sum())
            .collect()
    }

    /// Busy cycles of the cluster network: the shared bus for Ethernet, the
    /// per-node ports summed for a switch, ports + rack uplinks for a fat
    /// tree (0 for a single machine).
    pub fn network_busy_cycles(&self) -> u64 {
        match self.net_kind.map(|n| n.topology()) {
            Some(NetworkTopology::Bus) => self.net_bus.busy_cycles(),
            Some(NetworkTopology::Switch) => self.ports.iter().map(|p| p.busy_cycles()).sum(),
            Some(NetworkTopology::FatTree) => {
                self.ports.iter().map(|p| p.busy_cycles()).sum::<u64>()
                    + self.uplinks.iter().map(|u| u.busy_cycles()).sum::<u64>()
            }
            None => 0,
        }
    }

    /// Busy cycles of each node's I/O bus (disk).
    pub fn io_busy_cycles(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.io.busy_cycles()).collect()
    }

    /// Memory-bus busy cycles summed over all nodes — an allocation-free
    /// aggregate for per-access observer snapshots.
    pub fn total_bus_busy_cycles(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|n| n.buses.iter())
            .map(|b| b.busy_cycles())
            .sum()
    }

    /// I/O-bus busy cycles summed over all nodes (allocation-free).
    pub fn total_io_busy_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.io.busy_cycles()).sum()
    }

    /// L1 hit latency in cycles — the epoch engine applies speculative hits
    /// outside [`ClusterBackend::access`] and needs the same cost.
    pub(crate) fn hit_latency(&self) -> u64 {
        self.hit_lat
    }

    /// The per-processor L1 caches, for the epoch engine's parallel Phase A
    /// (each worker touches only its own shard's caches).
    pub(crate) fn caches_mut(&mut self) -> &mut [SetAssocCache] {
        &mut self.caches
    }

    /// Credit `n` L1 hits applied outside [`ClusterBackend::access`] (the
    /// epoch engine's speculative Phase A hits).
    pub(crate) fn add_l1_hits(&mut self, n: u64) {
        self.counts.l1_hits += n;
    }

    fn node_of(&self, proc: usize) -> usize {
        proc / self.n_per_node
    }

    /// NUMA domain owning `addr` within a node: pages interleaved across
    /// domains (always 0 on flat machines).
    fn domain_of_addr(&self, addr: u64) -> usize {
        if self.numa_domains == 1 {
            0
        } else {
            ((addr >> self.page_shift) as usize) % self.numa_domains
        }
    }

    /// NUMA domain a processor belongs to: procs split contiguously across
    /// domains (always 0 on flat machines).
    fn domain_of_proc(&self, proc: usize) -> usize {
        if self.numa_domains == 1 {
            0
        } else {
            (proc % self.n_per_node) * self.numa_domains / self.n_per_node
        }
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr >> self.block_shift
    }

    fn is_cluster(&self) -> bool {
        self.nodes.len() > 1
    }

    /// True when this is a CLUMP (+3-cycle remote costs).
    fn clump(&self) -> bool {
        self.is_cluster() && self.n_per_node > 1
    }

    /// Occupy the network for one transaction from `src` to a destination
    /// node.  Returns the extra delay on top of the caller's base cost:
    /// pure queueing for bus/switch media; queueing plus the rack-crossing
    /// cost when a fat-tree transfer leaves the source rack (the transfer
    /// then occupies both the source rack's uplink and the destination
    /// port).
    fn network_acquire(&mut self, now: u64, src: usize, dst: usize, occupancy: u64) -> u64 {
        match self.net_kind.map(|n| n.topology()) {
            Some(NetworkTopology::Bus) => self.net_bus.acquire(now, occupancy),
            Some(NetworkTopology::Switch) => self.ports[dst].acquire(now, occupancy),
            Some(NetworkTopology::FatTree) => {
                let net = self.net_kind.unwrap();
                if net.rack_of(src) == net.rack_of(dst) {
                    return self.ports[dst].acquire(now, occupancy);
                }
                let cross = net.spec().rack_crossing_cycles as u64;
                let occ = occupancy + cross;
                let up = self.uplinks[net.rack_of(src)].acquire(now, occ);
                let port = self.ports[dst].acquire(now + up, occ);
                up + port + cross
            }
            None => 0,
        }
    }

    /// Probe peer caches in `node` (excluding `requester`) for a Modified
    /// copy of the line.
    fn peer_with_modified(&self, node: usize, requester: usize, line: u64) -> Option<usize> {
        let base = node * self.n_per_node;
        (base..base + self.n_per_node)
            .find(|&p| p != requester && self.caches[p].probe(line) == Some(LineState::Modified))
    }

    /// Whether a clean line at `node` may enter the Exclusive state: on a
    /// cluster the block's directory must show no *other* sharer node
    /// (otherwise a later silent upgrade would leave remote copies stale).
    fn may_hold_exclusive(&self, node: usize, addr: u64) -> bool {
        if !self.is_cluster() {
            return true;
        }
        match self.directory.get(self.block_of(addr)) {
            None => true,
            Some(DirEntry::Exclusive(o)) => o == node,
            Some(DirEntry::Shared(mask)) => mask & !(1u64 << node) == 0,
        }
    }

    /// Whether any peer cache in `node` (excluding `requester`) holds a
    /// valid copy of the line, in any state.
    fn peer_holds_line(&self, node: usize, requester: usize, line: u64) -> bool {
        let base = node * self.n_per_node;
        (base..base + self.n_per_node)
            .any(|p| p != requester && self.caches[p].probe(line).is_some())
    }

    /// Downgrade peers' Exclusive copies of the line to Shared (free — the
    /// snoop that serviced the miss carries the information).
    fn downgrade_peers_line(&mut self, node: usize, requester: usize, line: u64) {
        let base = node * self.n_per_node;
        for p in base..base + self.n_per_node {
            if p != requester && self.caches[p].probe(line) == Some(LineState::Exclusive) {
                self.caches[p].set_state(line, LineState::Shared);
            }
        }
    }

    /// Invalidate the line in every peer cache of `node` except
    /// `requester`; returns how many copies were dropped.
    fn invalidate_peers_line(&mut self, node: usize, requester: usize, line: u64) -> u32 {
        let base = node * self.n_per_node;
        let mut dropped = 0;
        for p in base..base + self.n_per_node {
            if p != requester && self.caches[p].invalidate(line).is_some() {
                dropped += 1;
            }
        }
        dropped
    }

    /// Invalidate a whole coherence block in every cache of `node` (all
    /// processors), e.g. when the directory revokes the node's copy.
    fn invalidate_node_block(&mut self, node: usize, block: u64) {
        let addr = block * self.params.block_bytes;
        let base = node * self.n_per_node;
        for p in base..base + self.n_per_node {
            let (n, _dirty) = self.caches[p].invalidate_range(addr, self.params.block_bytes);
            if n > 0 {
                self.traffic.coherence_bytes += self.params.ctrl_msg_bytes;
            }
        }
        self.nodes[node].remote_cache.remove(&block);
    }

    /// Local-memory access at `node` by `proc`: memory-bus queueing + the
    /// 50-cycle service (+ the remote-domain penalty when a NUMA machine's
    /// processor reaches across domains).  When `check_residency` is set
    /// (accesses to locally-homed data) a non-resident page adds a disk
    /// page-in; blocks cached from remote homes skip the check — their
    /// capacity is modeled by the remote-cache LRU, and their pages live at
    /// the home node.
    fn local_memory_access(
        &mut self,
        proc: usize,
        node: usize,
        addr: u64,
        now: u64,
        check_residency: bool,
    ) -> u64 {
        let mem = self.lat.local_memory as u64;
        let dom = self.domain_of_addr(addr);
        let occ = if dom != self.domain_of_proc(proc) {
            mem + self.numa_penalty
        } else {
            mem
        };
        let wait = self.nodes[node].buses[dom].acquire(now, occ);
        let mut lat = wait + occ;
        if check_residency {
            let page = addr >> self.page_shift;
            if !self.nodes[node].residency.touch(page) {
                // Page-in from disk over the I/O bus.  `disk` counts
                // page-in events; the reference itself is still serviced by
                // local memory below.
                let disk = self.lat.local_disk as u64;
                let io_wait = self.nodes[node].io.acquire(now + lat, disk);
                lat += io_wait + disk;
                self.counts.disk += 1;
                self.nodes[node].residency.insert(page);
            }
        }
        self.counts.local_memory += 1;
        self.traffic.data_bytes += self.params.line_bytes;
        lat
    }

    /// Handle one memory reference by processor `proc` at simulated time
    /// `now`.  Returns the total latency in cycles (≥ 1; includes the
    /// 1-cycle cache access).
    ///
    /// Inlined into the engine's replay loop: every hit that needs no
    /// coherence action — any read hit, or a write hit on a Modified line —
    /// resolves right here with one cache probe and a counter bump.  The
    /// coherence-bearing paths are outlined so the fast path stays small.
    #[inline]
    pub fn access(&mut self, proc: usize, addr: u64, write: bool, now: u64) -> u64 {
        match self.caches[proc].lookup(addr) {
            Some(_) if !write => {
                // A read hit in any valid state is serviced by the L1 alone.
                self.counts.l1_hits += 1;
                self.hit_lat
            }
            Some(LineState::Modified) => {
                self.counts.l1_hits += 1;
                self.hit_lat
            }
            Some(LineState::Exclusive) => self.exclusive_write_hit(proc, addr),
            Some(LineState::Shared) => self.shared_write_upgrade(proc, addr, now),
            None => self.miss_fill(proc, addr, write, now),
        }
    }

    /// MESI silent upgrade on a write to an Exclusive line: the sole clean
    /// copy becomes dirty with no bus transaction.  The Exclusive invariant
    /// guarantees this node is the block's only sharer, so only the
    /// directory's dirtiness needs recording.
    fn exclusive_write_hit(&mut self, proc: usize, addr: u64) -> u64 {
        self.counts.l1_hits += 1;
        self.caches[proc].set_state(addr, LineState::Modified);
        if self.is_cluster() {
            let node = self.node_of(proc);
            let block = self.block_of(addr);
            self.directory.insert(block, DirEntry::Exclusive(node));
        }
        self.hit_lat
    }

    /// Write hit on a Shared line: invalidate other copies (upgrade).
    fn shared_write_upgrade(&mut self, proc: usize, addr: u64, now: u64) -> u64 {
        let node = self.node_of(proc);
        let line = self.caches[proc].line_of(addr);
        self.counts.l1_hits += 1;
        self.counts.upgrades += 1;
        let lat = self.upgrade(proc, node, line, addr, now);
        self.caches[proc].set_state(addr, LineState::Modified);
        self.hit_lat + lat
    }

    /// L1 miss: service the reference below the cache and fill the line.
    fn miss_fill(&mut self, proc: usize, addr: u64, write: bool, now: u64) -> u64 {
        let node = self.node_of(proc);
        let line = self.caches[proc].line_of(addr);
        let lat = self.miss(proc, node, line, addr, write, now);
        let state = if write {
            LineState::Modified
        } else if self.peer_holds_line(node, proc, line) || !self.may_hold_exclusive(node, addr) {
            // Downgrade any peer Exclusive copy: two sharers now.
            self.downgrade_peers_line(node, proc, line);
            LineState::Shared
        } else {
            // Sole cached copy in this node — and, on clusters, the
            // directory shows no other sharer node: MESI Exclusive.
            LineState::Exclusive
        };
        if let Some(ev) = self.caches[proc].insert(addr, state) {
            if ev.state == LineState::Modified {
                // Victim writeback occupies the node bus asynchronously
                // (no latency charged to the requester).
                let mem = self.lat.local_memory as u64;
                let dom = self.domain_of_addr(ev.addr);
                self.nodes[node].buses[dom].acquire(now, mem);
                self.traffic.data_bytes += self.params.line_bytes;
            }
        }
        self.hit_lat + lat
    }

    /// Shared→Modified upgrade: invalidate peer lines (snoop) and, on
    /// cluster platforms, revoke other nodes' block copies via the
    /// directory.
    fn upgrade(&mut self, proc: usize, node: usize, line: u64, addr: u64, now: u64) -> u64 {
        let mut lat = 0u64;
        // Intra-node invalidation round over the memory bus.
        let dropped = self.invalidate_peers_line(node, proc, line);
        if self.n_per_node > 1 {
            let occ = self.lat.smp_remote_cache as u64;
            let dom = self.domain_of_addr(addr);
            let wait = self.nodes[node].buses[dom].acquire(now, occ);
            lat += wait + occ;
            self.traffic.coherence_bytes += self.params.ctrl_msg_bytes * (dropped.max(1) as u64);
        }
        if self.is_cluster() {
            let block = self.block_of(addr);
            let sharers = match self.directory.get(block) {
                Some(DirEntry::Shared(mask)) => mask & !(1u64 << node),
                Some(DirEntry::Exclusive(o)) if o != node => 1u64 << o,
                _ => 0,
            };
            if sharers != 0 {
                // One network invalidation round (flat §5.1-style cost).
                let cost = self.lat.remote_node(self.net_kind.unwrap(), self.clump()) as u64;
                let home = self.home.home(addr);
                let wait = self.network_acquire(now + lat, node, home, cost);
                lat += wait + cost;
                for s in 0..self.nodes.len() {
                    if sharers & (1 << s) != 0 {
                        self.invalidate_node_block(s, block);
                    }
                }
            }
            self.directory.insert(block, DirEntry::Exclusive(node));
        }
        lat
    }

    /// L1 miss path: snoop intra-node, then local memory or the directory
    /// protocol.
    fn miss(
        &mut self,
        proc: usize,
        node: usize,
        line: u64,
        addr: u64,
        write: bool,
        now: u64,
    ) -> u64 {
        // 1. Intra-node snoop: a peer's Modified copy supplies the line
        //    cache-to-cache at 15 cycles.
        if let Some(peer) = self.peer_with_modified(node, proc, line) {
            let occ = self.lat.smp_remote_cache as u64;
            let dom = self.domain_of_addr(addr);
            let wait = self.nodes[node].buses[dom].acquire(now, occ);
            if write {
                self.caches[peer].invalidate(line);
            } else {
                self.caches[peer].set_state(line, LineState::Shared);
            }
            self.counts.cache_to_cache += 1;
            // The intervention's control message is coherence overhead; the
            // line payload itself is demand data.
            self.traffic.data_bytes += self.params.line_bytes;
            self.traffic.coherence_bytes += self.params.ctrl_msg_bytes;
            // A write also invalidates any other peer copies (none can be
            // Modified, but Shared copies may exist after downgrades).
            if write {
                self.invalidate_peers_line(node, proc, line);
            }
            return wait + occ;
        }
        // A write miss must invalidate peers' Shared copies.
        if write && self.n_per_node > 1 {
            let dropped = self.invalidate_peers_line(node, proc, line);
            if dropped > 0 {
                self.traffic.coherence_bytes += self.params.ctrl_msg_bytes * dropped as u64;
            }
        }

        if !self.is_cluster() {
            // 2a. SMP: local memory (with paging).
            return self.local_memory_access(proc, node, addr, now, true);
        }

        // 2b. Cluster: directory protocol on 256-byte blocks.
        let block = self.block_of(addr);
        let home = self.home.home(addr);
        let dir = self.directory.get(block);

        // Where is the valid data?
        match dir {
            Some(DirEntry::Exclusive(owner)) if owner != node => {
                // Dirty at another node: fetched at the remote-cached cost.
                let cost = self.lat.remote_cached(self.net_kind.unwrap(), self.clump()) as u64;
                let wait = self.network_acquire(now, node, owner, cost);
                self.counts.remote_dirty += 1;
                self.traffic.data_bytes += self.params.block_bytes;
                self.traffic.coherence_bytes += self.params.ctrl_msg_bytes;
                // The owner's caches lose (write) or downgrade (read) the block.
                if write {
                    self.invalidate_node_block(owner, block);
                    self.directory.insert(block, DirEntry::Exclusive(node));
                } else {
                    // Owner keeps a clean copy; both become sharers.
                    let base = owner * self.n_per_node;
                    for p in base..base + self.n_per_node {
                        let a = block * self.params.block_bytes;
                        let mut x = a;
                        while x < a + self.params.block_bytes {
                            self.caches[p].set_state(x, LineState::Shared);
                            x += self.params.line_bytes;
                        }
                    }
                    self.directory
                        .insert(block, DirEntry::Shared((1 << owner) | (1 << node)));
                }
                self.deposit_remote(node, home, block, now);
                wait + cost
            }
            _ => {
                // Clean (or uncached).  Sharer bookkeeping:
                let mut sharers = match dir {
                    Some(DirEntry::Shared(m)) => m,
                    Some(DirEntry::Exclusive(o)) => 1u64 << o, // o == node
                    None => 0,
                };
                let local_copy = node == home
                    || (sharers & (1 << node) != 0
                        && self.nodes[node].remote_cache.contains(&block));
                let mut lat;
                if local_copy {
                    // Served by this node's memory: paging applies only to
                    // locally-homed data; cached remote blocks are bounded
                    // by the remote-cache LRU instead.
                    lat = self.local_memory_access(proc, node, addr, now, node == home);
                    if node != home {
                        self.nodes[node].remote_cache.touch(block);
                    }
                } else {
                    // Fetch from the home node's memory over the network.
                    let cost = self.lat.remote_node(self.net_kind.unwrap(), self.clump()) as u64;
                    let wait = self.network_acquire(now, node, home, cost);
                    lat = wait + cost;
                    // Home page-in if its memory doesn't hold the page.
                    let page = addr >> self.page_shift;
                    if !self.nodes[home].residency.touch(page) {
                        let disk = self.lat.local_disk as u64;
                        let io_wait = self.nodes[home].io.acquire(now + lat, disk);
                        lat += io_wait + disk;
                        self.counts.disk += 1;
                        self.nodes[home].residency.insert(page);
                    }
                    self.counts.remote_clean += 1;
                    self.traffic.data_bytes += self.params.block_bytes;
                    self.deposit_remote(node, home, block, now);
                    // Existing sharer nodes lose line-level exclusivity:
                    // their MESI Exclusive lines of this block drop to
                    // Shared (no traffic — piggybacked on the fetch).
                    for s in 0..self.nodes.len() {
                        if s != node && sharers & (1 << s) != 0 {
                            let a = block * self.params.block_bytes;
                            let base = s * self.n_per_node;
                            for p in base..base + self.n_per_node {
                                let mut x = a;
                                while x < a + self.params.block_bytes {
                                    if self.caches[p].probe(x) == Some(LineState::Exclusive) {
                                        self.caches[p].set_state(x, LineState::Shared);
                                    }
                                    x += self.params.line_bytes;
                                }
                            }
                        }
                    }
                }
                sharers |= 1 << node;
                if write {
                    // Invalidate all other sharers.
                    let others = sharers & !(1 << node);
                    if others != 0 {
                        let cost =
                            self.lat.remote_node(self.net_kind.unwrap(), self.clump()) as u64;
                        let wait = self.network_acquire(now + lat, node, home, cost);
                        lat += wait + cost;
                        for s in 0..self.nodes.len() {
                            if others & (1 << s) != 0 {
                                self.invalidate_node_block(s, block);
                            }
                        }
                    }
                    self.directory.insert(block, DirEntry::Exclusive(node));
                } else {
                    self.directory.insert(block, DirEntry::Shared(sharers));
                }
                lat
            }
        }
    }

    /// Record a remote block now cached in `node`'s local memory, evicting
    /// the LRU remote block.  A clean victim just drops its sharer bit; a
    /// **dirty** victim (this node owns it Exclusive) must be written back
    /// to its home over the network — the transfer occupies the medium
    /// asynchronously (no latency charged to the triggering request).
    fn deposit_remote(&mut self, node: usize, home: usize, block: u64, now: u64) {
        if node == home {
            return;
        }
        if let Some(evicted) = self.nodes[node].remote_cache.insert(block) {
            match self.directory.get(evicted) {
                Some(DirEntry::Shared(m)) => {
                    let m2 = m & !(1u64 << node);
                    self.directory.insert(evicted, DirEntry::Shared(m2));
                }
                Some(DirEntry::Exclusive(o)) if o == node => {
                    // Dirty writeback to the victim's home node.
                    let victim_home = self.home.home(evicted * self.params.block_bytes);
                    let cost = self.lat.remote_node(self.net_kind.unwrap(), self.clump()) as u64;
                    self.network_acquire(now, node, victim_home, cost);
                    self.traffic.data_bytes += self.params.block_bytes;
                    // Home memory now holds the clean data; drop the entry
                    // (uncached-clean).
                    self.directory.remove(evicted);
                    self.nodes[victim_home]
                        .residency
                        .insert((evicted << self.block_shift) >> self.page_shift);
                }
                _ => {}
            }
            // Drop stale L1 lines of the evicted block.
            let addr = evicted * self.params.block_bytes;
            let base = node * self.n_per_node;
            for p in base..base + self.n_per_node {
                self.caches[p].invalidate_range(addr, self.params.block_bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memhier_core::machine::MachineSpec;

    fn smp(n: u32) -> ClusterBackend {
        let c = ClusterSpec::single(MachineSpec::new(n, 256, 64, 200.0));
        ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(1, 256))
    }

    fn cow(nn: u32, net: NetworkKind) -> ClusterBackend {
        let c = ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), nn, net);
        ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(nn as usize, 256))
    }

    #[test]
    fn smp_hit_after_miss() {
        let mut b = smp(2);
        // Cold miss: memory (50) + page-in disk (2000) + 1-cycle access.
        let l1 = b.access(0, 0x1000, false, 0);
        assert_eq!(l1, 1 + 50 + 2000);
        // Second access to the same page misses cache line? same line: hit.
        assert_eq!(b.access(0, 0x1000, false, 3000), 1);
        // Different line, same page: memory only.
        assert_eq!(b.access(0, 0x1040, false, 6000), 1 + 50);
        assert_eq!(b.counts().disk, 1, "one page-in");
        assert_eq!(b.counts().local_memory, 2, "both misses serviced by memory");
        assert_eq!(b.counts().l1_hits, 1);
    }

    #[test]
    fn smp_cache_to_cache_supply() {
        let mut b = smp(2);
        b.access(0, 0x1000, true, 0); // proc 0 gets Modified
        let lat = b.access(1, 0x1000, false, 5000);
        assert_eq!(lat, 1 + 15, "snoop hit at 15 cycles");
        assert_eq!(b.counts().cache_to_cache, 1);
        // Proc 0 still hits (downgraded to Shared).
        assert_eq!(b.access(0, 0x1000, false, 6000), 1);
    }

    #[test]
    fn smp_write_invalidates_peer() {
        let mut b = smp(2);
        b.access(0, 0x1000, false, 0);
        b.access(1, 0x1000, false, 5000); // both Shared
        let lat = b.access(0, 0x1000, true, 10_000);
        // Upgrade: 1 + 15-cycle invalidation round.
        assert_eq!(lat, 1 + 15);
        assert_eq!(b.counts().upgrades, 1);
        // Peer's copy is gone: its next read misses (but snoops proc 0's
        // Modified copy).
        let lat = b.access(1, 0x1000, false, 20_000);
        assert_eq!(lat, 1 + 15);
        assert_eq!(b.counts().cache_to_cache, 1);
    }

    #[test]
    fn smp_bus_contention_queues() {
        let mut b = smp(4);
        // Warm the page so only the 50-cycle memory service remains.
        b.access(0, 0x0, false, 0);
        // Two simultaneous misses to different lines: the second queues
        // behind the first's 50-cycle bus occupancy.
        let l1 = b.access(1, 0x40, false, 10_000);
        let l2 = b.access(2, 0x80, false, 10_000);
        assert_eq!(l1, 1 + 50);
        assert_eq!(l2, 1 + 50 + 50, "queued behind proc 1");
    }

    #[test]
    fn uniprocessor_never_snoops() {
        let mut b = smp(1);
        b.access(0, 0x0, true, 0);
        assert_eq!(b.counts().cache_to_cache, 0);
        assert_eq!(b.counts().upgrades, 0);
    }

    #[test]
    fn cow_remote_fetch_costs() {
        let mut b = cow(2, NetworkKind::Ethernet100);
        // Node 0 reads an address homed at node 1 (interleaved homes:
        // block 1 → node 1).
        let addr = 256u64; // block 1
        let lat = b.access(0, addr, false, 0);
        // Remote clean fetch: 4575 + home page-in 2000 + 1.
        assert_eq!(lat, 1 + 4575 + 2000);
        assert_eq!(b.counts().remote_clean, 1);
        // Re-read after L1 eviction would hit local memory; same line hits L1.
        assert_eq!(b.access(0, addr, false, 10_000), 1);
    }

    #[test]
    fn cow_local_home_access() {
        let mut b = cow(2, NetworkKind::Ethernet100);
        let addr = 0u64; // block 0 → node 0
        let lat = b.access(0, addr, false, 0);
        assert_eq!(lat, 1 + 50 + 2000, "local memory + cold page-in");
        assert_eq!(b.access(0, addr + 64, false, 5000), 1 + 50, "warm page");
    }

    #[test]
    fn cow_dirty_remote_fetch() {
        let mut b = cow(2, NetworkKind::Ethernet100);
        let addr = 0u64; // homed at node 0
        b.access(0, addr, true, 0); // node 0 writes: Exclusive(0)
        let lat = b.access(1, addr, false, 100_000);
        // Remote dirty: 9150 cycles.
        assert_eq!(lat, 1 + 9150);
        assert_eq!(b.counts().remote_dirty, 1);
    }

    #[test]
    fn cow_write_invalidates_remote_sharers() {
        let mut b = cow(2, NetworkKind::Ethernet100);
        let addr = 0u64;
        b.access(0, addr, false, 0); // node 0 shared (home)
        b.access(1, addr, false, 100_000); // node 1 shared (remote fetch)
                                           // Node 0 writes: one invalidation round to node 1.
        let lat = b.access(0, addr, true, 200_000);
        // Upgrade path: L1 hit + remote invalidation (4575).
        assert_eq!(lat, 1 + 4575);
        // Node 1's next read must go remote-dirty to node 0.
        let lat = b.access(1, addr, false, 300_000);
        assert_eq!(lat, 1 + 9150);
    }

    #[test]
    fn cow_remote_block_cached_locally() {
        let mut b = cow(2, NetworkKind::Ethernet100);
        let addr = 256u64; // homed at node 1
        b.access(0, addr, false, 0); // remote fetch, deposits block
                                     // A *different line* of the same 256-byte block: local memory hit.
        let lat = b.access(0, addr + 64, false, 100_000);
        assert_eq!(lat, 1 + 50, "block held in local remote-cache");
        assert_eq!(b.counts().local_memory, 1);
    }

    #[test]
    fn bus_network_serializes_switch_does_not() {
        // Two requester nodes fetch from two *different* homes at once.
        let mk = |net| {
            let mut b = cow(4, net);
            // Warm home pages to isolate network behavior.
            b.access(2, 512, false, 0); // block 2 homed at node 2
            b.access(3, 768, false, 0); // block 3 homed at node 3
                                        // Concurrent remote fetches from nodes 0 and 1.
            let a = b.access(0, 512, false, 1_000_000);
            let c = b.access(1, 768, false, 1_000_000);
            (a, c)
        };
        let (a_bus, c_bus) = mk(NetworkKind::Ethernet100);
        // Bus: second transfer queues behind the first (4575 occupancy).
        assert_eq!(a_bus, 1 + 4575);
        assert_eq!(c_bus, 1 + 4575 + 4575);
        let (a_sw, c_sw) = mk(NetworkKind::Atm155);
        // Switch: distinct destination ports, no queueing.
        assert_eq!(a_sw, 1 + 3275);
        assert_eq!(c_sw, 1 + 3275);
    }

    #[test]
    fn clump_uses_plus_three_costs() {
        let c = ClusterSpec::cluster(MachineSpec::new(2, 256, 64, 200.0), 2, NetworkKind::Atm155);
        let mut b = ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(2, 256));
        // Proc 0 (node 0) reads data homed at node 1.
        let lat = b.access(0, 256, false, 0);
        assert_eq!(lat, 1 + 3278 + 2000, "clump remote + home page-in");
        // Proc 1 (same node) then snoops... the line is Shared in proc 0's
        // cache; shared lines are served by local memory (the block was
        // deposited), not cache-to-cache.
        let lat = b.access(1, 256, false, 100_000);
        assert_eq!(lat, 1 + 50);
    }

    #[test]
    fn clump_intra_node_snoop_still_works() {
        let c = ClusterSpec::cluster(MachineSpec::new(2, 256, 64, 200.0), 2, NetworkKind::Atm155);
        let mut b = ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(2, 256));
        b.access(0, 0, true, 0); // proc 0, node 0, local home, Modified
        let lat = b.access(1, 0, false, 100_000); // proc 1, same node
        assert_eq!(lat, 1 + 15, "intra-node cache-to-cache");
    }

    #[test]
    fn mesi_silent_upgrade_on_private_data() {
        let mut b = smp(2);
        // Sole reader gets Exclusive; the subsequent write is a free
        // upgrade (no bus transaction, no upgrade count).
        b.access(0, 0x1000, false, 0);
        let lat = b.access(0, 0x1000, true, 5000);
        assert_eq!(lat, 1, "silent MESI upgrade");
        assert_eq!(b.counts().upgrades, 0);
    }

    #[test]
    fn mesi_shared_write_still_broadcasts() {
        let mut b = smp(2);
        b.access(0, 0x1000, false, 0);
        b.access(1, 0x1000, false, 5000); // second reader: both Shared now
        let lat = b.access(0, 0x1000, true, 10_000);
        assert_eq!(lat, 1 + 15, "upgrade broadcast required");
        assert_eq!(b.counts().upgrades, 1);
    }

    #[test]
    fn mesi_exclusive_denied_when_block_shared_across_nodes() {
        // Node 0 reads its home block; node 1 fetches it; node 0's line
        // drops to Shared, so node 0's write must invalidate node 1.
        let mut b = cow(2, NetworkKind::Ethernet100);
        b.access(0, 0, false, 0);
        b.access(1, 0, false, 100_000);
        let lat = b.access(0, 0, true, 200_000);
        assert_eq!(lat, 1 + 4575, "inter-node invalidation required");
        // And node 1's next read sees the dirty data (remote-dirty cost),
        // proving no stale silent upgrade happened.
        let lat = b.access(1, 0, false, 300_000);
        assert_eq!(lat, 1 + 9150);
    }

    #[test]
    fn numa_remote_domain_pays_penalty() {
        // 4P, 2 domains, 40-cycle penalty.  Procs 0-1 live in domain 0,
        // procs 2-3 in domain 1; pages interleave across domains.
        let c = ClusterSpec::single(MachineSpec::new(4, 256, 64, 200.0).with_numa(2, 40.0));
        let mut b = ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(1, 256));
        // Page 0 (addr 0) lives in domain 0: local for proc 0.
        assert_eq!(b.access(0, 0, false, 0), 1 + 50 + 2000, "local domain");
        // Page 1 (addr 4096) lives in domain 1: remote for proc 0.
        assert_eq!(
            b.access(0, 4096, false, 10_000),
            1 + 50 + 40 + 2000,
            "cross-domain access pays the penalty"
        );
        // ...but is local for proc 2 (domain 1).
        assert_eq!(b.access(2, 4096 + 64, false, 20_000), 1 + 50);
    }

    #[test]
    fn numa_domains_have_independent_buses() {
        let c = ClusterSpec::single(MachineSpec::new(4, 256, 64, 200.0).with_numa(2, 40.0));
        let mut b = ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(1, 256));
        // Warm both pages.
        b.access(0, 0, false, 0);
        b.access(2, 4096, false, 0);
        // Simultaneous same-domain misses queue; cross-domain pairs do not.
        let l0 = b.access(0, 0x40, false, 1_000_000); // domain 0
        let l2 = b.access(2, 4096 + 0x40, false, 1_000_000); // domain 1
        assert_eq!(l0, 1 + 50);
        assert_eq!(l2, 1 + 50, "distinct domain buses never contend");
        let l1 = b.access(1, 0x80, false, 2_000_000); // domain 0
        let l3 = b.access(0, 0xc0, false, 2_000_000); // domain 0 again
        assert_eq!(l1, 1 + 50);
        assert_eq!(l3, 1 + 50 + 50, "same-domain misses still queue");
    }

    #[test]
    fn flat_machine_is_unchanged_by_numa_plumbing() {
        // The NUMA-aware bus vector with one domain must reproduce the
        // pinned flat-SMP cycles exactly.
        let mut b = smp(2);
        assert_eq!(b.access(0, 0x1000, false, 0), 1 + 50 + 2000);
        assert_eq!(b.access(0, 0x1040, false, 6000), 1 + 50);
        assert_eq!(b.bus_busy_cycles(), vec![100], "one bus, summed busy");
    }

    #[test]
    fn fat_tree_in_rack_behaves_like_a_switch() {
        // 4 machines fit one rack: no crossing cost, per-port contention.
        let mut b = cow(4, NetworkKind::FatTree);
        b.access(1, 256, false, 0); // warm home page at node 1
        let lat = b.access(0, 256, false, 1_000_000);
        assert_eq!(lat, 1 + 1475, "in-rack fetch at the registry cost");
    }

    #[test]
    fn fat_tree_cross_rack_pays_uplink_crossing() {
        // 8 machines = racks {0-3} and {4-7}.  Node 0 fetching from node 4
        // crosses racks: +400 cycles.
        let mut b = cow(8, NetworkKind::FatTree);
        let addr = 4 * 256u64; // block 4 → home node 4
        b.access(4, addr, false, 0); // warm home page
        let lat = b.access(0, addr, false, 1_000_000);
        assert_eq!(lat, 1 + 1475 + 400, "cross-rack fetch adds the crossing");
        // Two simultaneous cross-rack fetches from the same source rack
        // serialize on the rack's uplink.
        let addr5 = 5 * 256u64;
        b.access(5, addr5, false, 2_000_000); // warm
        let a = b.access(1, addr, false, 3_000_000); // rack 0 → rack 1 (dirty? no: shared clean)
        let c = b.access(2, addr5, false, 3_000_000); // rack 0 → rack 1, different port
        assert_eq!(a, 1 + 1475 + 400);
        assert_eq!(
            c,
            1 + 1475 + 400 + (1475 + 400),
            "second transfer queues behind the shared uplink"
        );
        assert!(b.network_busy_cycles() > 0);
    }

    #[test]
    fn traffic_accumulates() {
        let mut b = smp(2);
        b.access(0, 0, false, 0);
        b.access(1, 0, false, 1000);
        b.access(0, 0, true, 2000); // upgrade → coherence traffic
        let t = b.traffic();
        assert!(t.data_bytes > 0);
        assert!(t.coherence_bytes > 0);
        assert!(t.coherence_fraction() > 0.0 && t.coherence_fraction() < 1.0);
    }

    #[test]
    fn counts_total_matches_accesses() {
        let mut b = cow(2, NetworkKind::Atm155);
        let mut refs = 0u64;
        for i in 0..200u64 {
            b.access((i % 2) as usize, (i * 64) % 4096, i % 3 == 0, i * 10);
            refs += 1;
        }
        assert_eq!(b.counts().total_refs(), refs);
    }
}
