//! Set-associative LRU cache with MSI line states (§5.1: 64-byte lines,
//! two-way set-associative, LRU replacement, write-invalidate).

/// Coherence state of a cache line (write-invalidate MESI).
///
/// `Exclusive` (clean, sole copy) is what lets a private read-modify-write
/// upgrade silently instead of broadcasting an invalidation — without it,
/// kernels like LU flood the bus with upgrade traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LineState {
    /// Valid, clean, possibly shared with other caches.
    Shared,
    /// Valid, clean, sole cached copy (silent upgrade allowed).
    Exclusive,
    /// Valid, dirty, exclusively held by this cache.
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    /// Global LRU stamp (bigger = more recent).
    stamp: u64,
    valid: bool,
}

/// A set-associative, LRU-replacement cache indexed by byte address.
#[derive(Debug)]
pub struct SetAssocCache {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    clock: u64,
}

/// Outcome of inserting a line: the victim, if a valid line was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted line.
    pub addr: u64,
    /// Its state at eviction (Modified ⇒ writeback needed).
    pub state: LineState,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.  Panics if the geometry is degenerate.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1);
        let total_lines = (capacity_bytes / line_bytes).max(1) as usize;
        let sets = (total_lines / ways).max(1);
        assert!(
            sets.is_power_of_two(),
            "cache geometry must give a power-of-two set count (got {sets})"
        );
        SetAssocCache {
            line_bytes,
            sets,
            ways,
            lines: vec![
                Line {
                    tag: 0,
                    state: LineState::Shared,
                    stamp: 0,
                    valid: false
                };
                sets * ways
            ],
            clock: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_bytes
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        (addr / self.line_bytes) / self.sets as u64
    }

    /// Look up `addr`; a hit refreshes LRU and returns the line state.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.clock += 1;
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].stamp = self.clock;
                return Some(self.lines[i].state);
            }
        }
        None
    }

    /// Look up `addr` without touching LRU recency — used for snoop probes
    /// by other processors, which must not refresh the line.
    pub fn probe(&self, addr: u64) -> Option<LineState> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                return Some(self.lines[i].state);
            }
        }
        None
    }

    /// Set the state of a resident line (no-op if absent).
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].state = state;
                return;
            }
        }
    }

    /// Insert `addr` with `state`, evicting the set's LRU line if needed.
    pub fn insert(&mut self, addr: u64, state: LineState) -> Option<Evicted> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.clock += 1;
        let base = set * self.ways;
        // Already present: update in place.
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].state = state;
                self.lines[i].stamp = self.clock;
                return None;
            }
        }
        // Pick an invalid way or the LRU way.
        let mut victim = base;
        let mut best = u64::MAX;
        for i in base..base + self.ways {
            if !self.lines[i].valid {
                victim = i;
                break;
            }
            if self.lines[i].stamp < best {
                best = self.lines[i].stamp;
                victim = i;
            }
        }
        let evicted = if self.lines[victim].valid {
            let v = self.lines[victim];
            let victim_addr = (v.tag * self.sets as u64 + set as u64) * self.line_bytes;
            Some(Evicted {
                addr: victim_addr,
                state: v.state,
            })
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            state,
            stamp: self.clock,
            valid: true,
        };
        evicted
    }

    /// Invalidate `addr` if resident; returns its state when it was.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].valid = false;
                return Some(self.lines[i].state);
            }
        }
        None
    }

    /// Invalidate every resident line within `[block_addr, block_addr +
    /// block_bytes)` — used when a coherence unit (256-byte block) larger
    /// than the line is invalidated.  Returns how many lines were dropped
    /// and whether any was Modified.
    pub fn invalidate_range(&mut self, block_addr: u64, block_bytes: u64) -> (u32, bool) {
        let mut count = 0;
        let mut dirty = false;
        let mut a = block_addr;
        while a < block_addr + block_bytes {
            if let Some(st) = self.invalidate(a) {
                count += 1;
                dirty |= st == LineState::Modified;
            }
            a += self.line_bytes;
        }
        (count, dirty)
    }

    /// Base address of the line containing `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        self.line_addr(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 8 lines of 64 B, 2-way => 4 sets.
        SetAssocCache::new(512, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.capacity_bytes(), 512);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.line_of(100), 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0), None);
        assert_eq!(c.insert(0, LineState::Shared), None);
        assert_eq!(c.lookup(0), Some(LineState::Shared));
        assert_eq!(c.lookup(63), Some(LineState::Shared), "same line");
        assert_eq!(c.lookup(64), None, "next line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three addresses mapping to set 0 (stride = sets * line = 256).
        c.insert(0, LineState::Shared);
        c.insert(256, LineState::Shared);
        c.lookup(0); // refresh 0 → 256 is LRU
        let ev = c.insert(512, LineState::Shared).unwrap();
        assert_eq!(ev.addr, 256);
        assert!(c.lookup(0).is_some());
        assert!(c.lookup(256).is_none());
        assert!(c.lookup(512).is_some());
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = small();
        c.insert(0, LineState::Modified);
        c.insert(256, LineState::Shared);
        c.lookup(256);
        c.lookup(256); // 0 is LRU
        let ev = c.insert(512, LineState::Shared).unwrap();
        assert_eq!(ev.addr, 0);
        assert_eq!(ev.state, LineState::Modified);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = small();
        c.insert(0, LineState::Shared);
        c.set_state(0, LineState::Modified);
        assert_eq!(c.lookup(0), Some(LineState::Modified));
        // set_state on absent line is a no-op.
        c.set_state(4096, LineState::Modified);
        assert_eq!(c.lookup(4096), None);
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = small();
        c.insert(0, LineState::Modified);
        assert_eq!(c.invalidate(0), Some(LineState::Modified));
        assert_eq!(c.invalidate(0), None);
        assert_eq!(c.lookup(0), None);
    }

    #[test]
    fn invalidate_block_range() {
        let mut c = SetAssocCache::new(4096, 2, 64);
        // A 256-byte block spans 4 lines.
        c.insert(1024, LineState::Shared);
        c.insert(1088, LineState::Modified);
        c.insert(1152, LineState::Shared);
        // 1216 not resident.
        let (n, dirty) = c.invalidate_range(1024, 256);
        assert_eq!(n, 3);
        assert!(dirty);
        assert_eq!(c.lookup(1088), None);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = small();
        c.insert(0, LineState::Shared);
        assert_eq!(c.insert(0, LineState::Modified), None);
        assert_eq!(c.lookup(0), Some(LineState::Modified));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for i in 0..4u64 {
            c.insert(i * 64, LineState::Shared);
        }
        for i in 0..4u64 {
            assert!(c.lookup(i * 64).is_some(), "line {i}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        SetAssocCache::new(512, 2, 48);
    }

    #[test]
    fn paper_smp_cache_geometry() {
        // 256 KB, 2-way, 64-byte lines = 2048 sets; must construct.
        let c = SetAssocCache::new(256 * 1024, 2, 64);
        assert_eq!(c.capacity_bytes(), 256 * 1024);
    }
}
