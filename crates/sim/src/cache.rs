//! Set-associative LRU cache with MSI line states (§5.1: 64-byte lines,
//! two-way set-associative, LRU replacement, write-invalidate).
//!
//! Storage is a per-set tile of packed words: for each set, `ways` tag
//! words followed by `ways` metadata words, each metadata word packing
//! `stamp << 2 | state` (state 0 = invalid).  A whole 2-way set is 32
//! bytes, so a lookup touches a single cache line of tile data.  Set and
//! tag extraction are pure shift/mask arithmetic — the line size and set
//! count are powers of two, so the hot `lookup` never divides and never
//! allocates.  Stamps come from per-set age counters bumped on every
//! `lookup` and `insert`; they are only ever compared *within* a set and
//! each touch stamps uniquely, so the per-set LRU victim order is exactly
//! the order of touches — the same order any strictly-increasing clock
//! (global or per-set) would produce.

/// Coherence state of a cache line (write-invalidate MESI).
///
/// `Exclusive` (clean, sole copy) is what lets a private read-modify-write
/// upgrade silently instead of broadcasting an invalidation — without it,
/// kernels like LU flood the bus with upgrade traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LineState {
    /// Valid, clean, possibly shared with other caches.
    Shared,
    /// Valid, clean, sole cached copy (silent upgrade allowed).
    Exclusive,
    /// Valid, dirty, exclusively held by this cache.
    Modified,
}

/// Line-state byte encoding: 0 = invalid, 1.. = `LineState`.
const ST_SHARED: u8 = 1;
const ST_EXCLUSIVE: u8 = 2;
const ST_MODIFIED: u8 = 3;

#[inline]
fn pack(state: LineState) -> u8 {
    match state {
        LineState::Shared => ST_SHARED,
        LineState::Exclusive => ST_EXCLUSIVE,
        LineState::Modified => ST_MODIFIED,
    }
}

#[inline]
fn unpack(byte: u8) -> LineState {
    match byte {
        ST_SHARED => LineState::Shared,
        ST_EXCLUSIVE => LineState::Exclusive,
        _ => LineState::Modified,
    }
}

/// A set-associative, LRU-replacement cache indexed by byte address.
#[derive(Debug)]
pub struct SetAssocCache {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `log2(line_bytes)`: shifts an address down to its block number.
    line_shift: u32,
    /// `log2(sets)`: shifts a block number down to its tag.
    set_shift: u32,
    /// `sets - 1`: masks a block number to its set index.
    set_mask: u64,
    /// Tiled line storage: set `s` occupies `data[s*2*ways ..]` — first
    /// `ways` words are tags, the next `ways` words are packed metadata
    /// (`stamp << 2 | state`, state 0 = invalid, bigger stamp = more
    /// recent *within its set*).
    data: Vec<u64>,
    /// Monotonic age counter per set, bumped on every lookup and insert.
    /// Stamps are only ever *compared* within a set, and each touch
    /// stamps uniquely, so any strictly-increasing clock (global or
    /// per-set) yields the same LRU victim order; per-set counters keep
    /// successive lookups' read-modify-writes on independent locations
    /// instead of one serial store-to-load chain.
    ages: Vec<u64>,
}

/// Outcome of inserting a line: the victim, if a valid line was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted line.
    pub addr: u64,
    /// Its state at eviction (Modified ⇒ writeback needed).
    pub state: LineState,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.  Panics if the geometry is degenerate.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1);
        let total_lines = (capacity_bytes / line_bytes).max(1) as usize;
        let sets = (total_lines / ways).max(1);
        assert!(
            sets.is_power_of_two(),
            "cache geometry must give a power-of-two set count (got {sets})"
        );
        let lines = sets * ways;
        SetAssocCache {
            line_bytes,
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            set_mask: sets as u64 - 1,
            data: vec![0; lines * 2],
            ages: vec![0; sets],
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * self.line_bytes
    }

    /// Set index and tag of `addr` — two shifts and a mask, no division.
    #[inline]
    fn split(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.line_shift;
        ((block & self.set_mask) as usize, block >> self.set_shift)
    }

    /// Scan set tile `data[base..]` for `tag`; on a hit, return the way
    /// index and its packed metadata word.  The ubiquitous two-way
    /// geometry (every paper platform) gets a straight-line body — the
    /// single slice take proves the bounds, so the scan compiles to four
    /// loads and two compares with no loop.  Probe order matches the
    /// generic loop (way 0 first), so both arms pick identical ways.
    #[inline(always)]
    fn find(&self, base: usize, tag: u64) -> Option<(usize, u64)> {
        if self.ways == 2 {
            let t = &self.data[base..base + 4];
            let m0 = t[2];
            if m0 & 3 != 0 && t[0] == tag {
                return Some((0, m0));
            }
            let m1 = t[3];
            if m1 & 3 != 0 && t[1] == tag {
                return Some((1, m1));
            }
            return None;
        }
        let (tags, meta) = self.data[base..base + 2 * self.ways].split_at(self.ways);
        for (w, (&t, &m)) in tags.iter().zip(meta.iter()).enumerate() {
            if m & 3 != 0 && t == tag {
                return Some((w, m));
            }
        }
        None
    }

    /// Look up `addr`; a hit refreshes LRU and returns the line state.
    #[inline]
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let (set, tag) = self.split(addr);
        self.ages[set] += 1;
        let age = self.ages[set];
        let base = set * 2 * self.ways;
        let (w, m) = self.find(base, tag)?;
        self.data[base + self.ways + w] = age << 2 | (m & 3);
        Some(unpack((m & 3) as u8))
    }

    /// Look up `addr` without touching LRU recency — used for snoop probes
    /// by other processors, which must not refresh the line.
    #[inline]
    pub fn probe(&self, addr: u64) -> Option<LineState> {
        let (set, tag) = self.split(addr);
        let (_, m) = self.find(set * 2 * self.ways, tag)?;
        Some(unpack((m & 3) as u8))
    }

    /// Set the state of a resident line (no-op if absent).
    #[inline]
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let (set, tag) = self.split(addr);
        let base = set * 2 * self.ways;
        if let Some((w, m)) = self.find(base, tag) {
            // Replace the state bits, preserving the LRU stamp.
            self.data[base + self.ways + w] = (m & !3) | pack(state) as u64;
        }
    }

    /// Insert `addr` with `state`, evicting the set's LRU line if needed.
    pub fn insert(&mut self, addr: u64, state: LineState) -> Option<Evicted> {
        let (set, tag) = self.split(addr);
        self.ages[set] += 1;
        let age = self.ages[set];
        let tags = set * 2 * self.ways;
        let meta = tags + self.ways;
        // Already present: update in place.
        if let Some((w, _)) = self.find(tags, tag) {
            self.data[meta + w] = age << 2 | pack(state) as u64;
            return None;
        }
        // Pick an invalid way or the LRU way.  Comparing packed metadata
        // words orders valid lines exactly by stamp (stamps are unique
        // within a set, so the state bits can never decide).
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for w in 0..self.ways {
            let m = self.data[meta + w];
            if m & 3 == 0 {
                victim = w;
                break;
            }
            if m < best {
                best = m;
                victim = w;
            }
        }
        let vm = self.data[meta + victim];
        let evicted = if vm & 3 != 0 {
            let victim_addr =
                ((self.data[tags + victim] << self.set_shift) + set as u64) << self.line_shift;
            Some(Evicted {
                addr: victim_addr,
                state: unpack((vm & 3) as u8),
            })
        } else {
            None
        };
        self.data[tags + victim] = tag;
        self.data[meta + victim] = age << 2 | pack(state) as u64;
        evicted
    }

    /// Invalidate `addr` if resident; returns its state when it was.
    #[inline]
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let (set, tag) = self.split(addr);
        let base = set * 2 * self.ways;
        let (w, m) = self.find(base, tag)?;
        self.data[base + self.ways + w] = 0;
        Some(unpack((m & 3) as u8))
    }

    /// Invalidate every resident line within `[block_addr, block_addr +
    /// block_bytes)` — used when a coherence unit (256-byte block) larger
    /// than the line is invalidated.  Returns how many lines were dropped
    /// and whether any was Modified.
    pub fn invalidate_range(&mut self, block_addr: u64, block_bytes: u64) -> (u32, bool) {
        let mut count = 0;
        let mut dirty = false;
        let mut a = block_addr;
        while a < block_addr + block_bytes {
            if let Some(st) = self.invalidate(a) {
                count += 1;
                dirty |= st == LineState::Modified;
            }
            a += self.line_bytes;
        }
        (count, dirty)
    }

    /// Base address of the line containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 8 lines of 64 B, 2-way => 4 sets.
        SetAssocCache::new(512, 2, 64)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.capacity_bytes(), 512);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.line_of(100), 64);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert_eq!(c.lookup(0), None);
        assert_eq!(c.insert(0, LineState::Shared), None);
        assert_eq!(c.lookup(0), Some(LineState::Shared));
        assert_eq!(c.lookup(63), Some(LineState::Shared), "same line");
        assert_eq!(c.lookup(64), None, "next line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three addresses mapping to set 0 (stride = sets * line = 256).
        c.insert(0, LineState::Shared);
        c.insert(256, LineState::Shared);
        c.lookup(0); // refresh 0 → 256 is LRU
        let ev = c.insert(512, LineState::Shared).unwrap();
        assert_eq!(ev.addr, 256);
        assert!(c.lookup(0).is_some());
        assert!(c.lookup(256).is_none());
        assert!(c.lookup(512).is_some());
    }

    #[test]
    fn eviction_reports_dirty_state() {
        let mut c = small();
        c.insert(0, LineState::Modified);
        c.insert(256, LineState::Shared);
        c.lookup(256);
        c.lookup(256); // 0 is LRU
        let ev = c.insert(512, LineState::Shared).unwrap();
        assert_eq!(ev.addr, 0);
        assert_eq!(ev.state, LineState::Modified);
    }

    #[test]
    fn set_state_transitions() {
        let mut c = small();
        c.insert(0, LineState::Shared);
        c.set_state(0, LineState::Modified);
        assert_eq!(c.lookup(0), Some(LineState::Modified));
        // set_state on absent line is a no-op.
        c.set_state(4096, LineState::Modified);
        assert_eq!(c.lookup(4096), None);
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = small();
        c.insert(0, LineState::Modified);
        assert_eq!(c.invalidate(0), Some(LineState::Modified));
        assert_eq!(c.invalidate(0), None);
        assert_eq!(c.lookup(0), None);
    }

    #[test]
    fn invalidate_block_range() {
        let mut c = SetAssocCache::new(4096, 2, 64);
        // A 256-byte block spans 4 lines.
        c.insert(1024, LineState::Shared);
        c.insert(1088, LineState::Modified);
        c.insert(1152, LineState::Shared);
        // 1216 not resident.
        let (n, dirty) = c.invalidate_range(1024, 256);
        assert_eq!(n, 3);
        assert!(dirty);
        assert_eq!(c.lookup(1088), None);
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut c = small();
        c.insert(0, LineState::Shared);
        assert_eq!(c.insert(0, LineState::Modified), None);
        assert_eq!(c.lookup(0), Some(LineState::Modified));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for i in 0..4u64 {
            c.insert(i * 64, LineState::Shared);
        }
        for i in 0..4u64 {
            assert!(c.lookup(i * 64).is_some(), "line {i}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        SetAssocCache::new(512, 2, 48);
    }

    #[test]
    fn paper_smp_cache_geometry() {
        // 256 KB, 2-way, 64-byte lines = 2048 sets; must construct.
        let c = SetAssocCache::new(256 * 1024, 2, 64);
        assert_eq!(c.capacity_bytes(), 256 * 1024);
    }

    #[test]
    fn victim_address_reconstruction_matches_arithmetic_form() {
        // addr = (tag * sets + set) * line_bytes must round-trip through
        // the shift-based reconstruction for a non-trivial geometry.
        let mut c = SetAssocCache::new(4096, 2, 64); // 32 sets
        let addr: u64 = 7 * 32 * 64 + 5 * 64; // tag 7, set 5
        c.insert(addr, LineState::Shared);
        c.insert(addr + 32 * 64, LineState::Shared); // tag 8, same set
        let ev = c.insert(addr + 2 * 32 * 64, LineState::Shared).unwrap();
        assert_eq!(ev.addr, addr);
    }
}
