//! Flat, tiled storage for the inter-node coherence directory.
//!
//! The directory used to be a `HashMap<u64, DirState>` — fine for
//! correctness, but every miss paid a pointer-chased probe through
//! `std`'s control-byte groups plus an enum load from a separate heap
//! allocation.  [`DirTable`] keeps the same `get` / `insert` / `remove`
//! contract in one flat allocation of per-group **tiles**, mirroring the
//! struct-of-arrays layout of `cache.rs`:
//!
//! ```text
//! tile t  ->  [ key_0 .. key_7 | meta_0 .. meta_7 ]
//!             meta_i = 0                   (empty)
//!                    | 1                   (tombstone)
//!                    | sharer_mask << 2|2  (Shared)
//!                    | owner      << 2|3   (Exclusive)
//! ```
//!
//! A probe lands in one tile and scans eight keys then eight packed
//! metas, all contiguous — the common directory hit touches two cache
//! lines of simulator-host memory.  Occupancy lives in the meta word, so
//! keys need no reserved sentinel values and any `u64` block number is a
//! valid key.
//!
//! The table is open-addressed with linear probing over slots (tiles are
//! a layout detail, not a probe boundary), grows at ~¾ load, and is
//! never iterated — so bucket order is unobservable and simulation
//! results are bit-identical to the `HashMap` it replaced.  That
//! equivalence is pinned by a property test in
//! `crates/sim/tests/dirtable_model.rs` against a naive map-based model.

/// Slots per tile; one tile is `2 * LANES` contiguous `u64`s.
const LANES: usize = 8;

const META_EMPTY: u64 = 0;
const META_TOMBSTONE: u64 = 1;
const TAG_SHARED: u64 = 2;
const TAG_EXCLUSIVE: u64 = 3;

/// Directory entry for one coherence block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEntry {
    /// Clean copies at the nodes in the bitmask.
    Shared(u64),
    /// Dirty, exclusively owned by one node.
    Exclusive(usize),
}

impl DirEntry {
    #[inline]
    fn pack(self) -> u64 {
        match self {
            DirEntry::Shared(mask) => {
                debug_assert!(mask < 1 << 62, "sharer mask overflows packed meta");
                (mask << 2) | TAG_SHARED
            }
            DirEntry::Exclusive(owner) => ((owner as u64) << 2) | TAG_EXCLUSIVE,
        }
    }

    #[inline]
    fn unpack(meta: u64) -> DirEntry {
        if meta & 0b11 == TAG_SHARED {
            DirEntry::Shared(meta >> 2)
        } else {
            DirEntry::Exclusive((meta >> 2) as usize)
        }
    }
}

/// Flat open-addressed block → [`DirEntry`] table (see module docs).
#[derive(Debug, Clone)]
pub struct DirTable {
    /// Tiled storage: `tiles * 2 * LANES` words.
    data: Vec<u64>,
    /// Slot-count mask (`slots - 1`; slot count is a power of two).
    mask: usize,
    /// Occupied (non-tombstone) slots.
    len: usize,
    /// Occupied + tombstoned slots — growth trigger.
    used: usize,
}

impl Default for DirTable {
    fn default() -> Self {
        DirTable::with_capacity(0)
    }
}

impl DirTable {
    /// New table pre-sized for about `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(LANES) * 4 / 3).next_power_of_two();
        DirTable {
            data: vec![0; slots * 2],
            mask: slots - 1,
            len: 0,
            used: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// splitmix64 finalizer — same mixing as `util::FastHasher`.
    #[inline]
    fn hash(key: u64) -> u64 {
        let mut z = key ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `(key_index, meta_index)` of slot `i` in the tiled layout.
    #[inline]
    fn lanes(&self, i: usize) -> (usize, usize) {
        let tile = i / LANES;
        let lane = i % LANES;
        let base = tile * 2 * LANES;
        (base + lane, base + LANES + lane)
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<DirEntry> {
        let mut i = Self::hash(key) as usize & self.mask;
        loop {
            let (ki, mi) = self.lanes(i);
            let meta = self.data[mi];
            if meta == META_EMPTY {
                return None;
            }
            if meta != META_TOMBSTONE && self.data[ki] == key {
                return Some(DirEntry::unpack(meta));
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Insert or replace the entry for `key`.
    #[inline]
    pub fn insert(&mut self, key: u64, entry: DirEntry) {
        // Growth check up front keeps at least one empty slot, so probes
        // below always terminate.
        if (self.used + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
        let packed = entry.pack();
        let mut i = Self::hash(key) as usize & self.mask;
        let mut grave: Option<usize> = None;
        loop {
            let (ki, mi) = self.lanes(i);
            let meta = self.data[mi];
            if meta == META_EMPTY {
                // New key: reuse the first tombstone on the probe path if
                // one was seen, else claim this empty slot.
                let slot = match grave {
                    Some(g) => g,
                    None => {
                        self.used += 1;
                        i
                    }
                };
                let (ki, mi) = self.lanes(slot);
                self.data[ki] = key;
                self.data[mi] = packed;
                self.len += 1;
                return;
            }
            if meta == META_TOMBSTONE {
                grave.get_or_insert(i);
            } else if self.data[ki] == key {
                self.data[mi] = packed;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Remove `key`; returns the entry it held, if any.
    #[inline]
    pub fn remove(&mut self, key: u64) -> Option<DirEntry> {
        let mut i = Self::hash(key) as usize & self.mask;
        loop {
            let (ki, mi) = self.lanes(i);
            let meta = self.data[mi];
            if meta == META_EMPTY {
                return None;
            }
            if meta != META_TOMBSTONE && self.data[ki] == key {
                self.data[mi] = META_TOMBSTONE;
                self.len -= 1;
                return Some(DirEntry::unpack(meta));
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Double the slot count and rehash every live entry (drops
    /// tombstones).
    #[cold]
    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.data, vec![0; (self.mask + 1) * 4]);
        self.mask = self.mask * 2 + 1;
        self.len = 0;
        self.used = 0;
        let slots = old.len() / 2;
        for i in 0..slots {
            let tile = i / LANES;
            let lane = i % LANES;
            let base = tile * 2 * LANES;
            let meta = old[base + LANES + lane];
            if meta > META_TOMBSTONE {
                self.insert(old[base + lane], DirEntry::unpack(meta));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = DirTable::default();
        assert!(t.is_empty());
        t.insert(7, DirEntry::Shared(0b101));
        t.insert(9, DirEntry::Exclusive(3));
        assert_eq!(t.get(7), Some(DirEntry::Shared(0b101)));
        assert_eq!(t.get(9), Some(DirEntry::Exclusive(3)));
        assert_eq!(t.get(8), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.remove(7), Some(DirEntry::Shared(0b101)));
        assert_eq!(t.remove(7), None);
        assert_eq!(t.get(7), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn overwrite_replaces_in_place() {
        let mut t = DirTable::default();
        t.insert(42, DirEntry::Shared(1));
        t.insert(42, DirEntry::Exclusive(5));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(42), Some(DirEntry::Exclusive(5)));
    }

    #[test]
    fn tombstone_slots_are_reused() {
        let mut t = DirTable::with_capacity(8);
        for k in 0..6u64 {
            t.insert(k, DirEntry::Exclusive(k as usize));
        }
        for k in 0..6u64 {
            assert!(t.remove(k).is_some());
        }
        // Re-inserting through the tombstoned probe paths must not grow
        // or lose entries.
        for k in 0..6u64 {
            t.insert(k, DirEntry::Shared(1 << k));
        }
        for k in 0..6u64 {
            assert_eq!(t.get(k), Some(DirEntry::Shared(1 << k)));
        }
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = DirTable::with_capacity(4);
        for k in 0..10_000u64 {
            t.insert(
                k.wrapping_mul(0x9E3779B97F4A7C15),
                DirEntry::Shared(k & 0x3F),
            );
        }
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(
                t.get(k.wrapping_mul(0x9E3779B97F4A7C15)),
                Some(DirEntry::Shared(k & 0x3F))
            );
        }
    }

    #[test]
    fn extreme_keys_are_valid() {
        // Occupancy lives in the meta word, so no key value is reserved.
        let mut t = DirTable::default();
        for k in [0u64, 1, u64::MAX, u64::MAX - 1] {
            t.insert(k, DirEntry::Exclusive(0));
            assert_eq!(t.get(k), Some(DirEntry::Exclusive(0)));
        }
        assert_eq!(t.len(), 4);
    }
}
