//! The program-driven SPMD execution engine.
//!
//! Each logical processor's instruction stream arrives as a sequence of
//! [`MemEvent`]s, either in memory or over a bounded crossbeam channel from
//! a live workload thread.  The engine advances processors in **simulated
//! time order** (a conservative discrete-event loop keyed on per-processor
//! clocks), so shared-resource queueing in the backend sees requests in the
//! order the simulated machine would issue them.
//!
//! The entry point is the [`SimSession`] builder: backend + one source per
//! processor + any number of [`SimObserver`] taps.  With no observers the
//! hot loop takes no snapshots at all — observability is strictly
//! pay-for-what-you-use.
//!
//! **Barrier contract:** a workload thread must emit
//! [`MemEvent::Barrier`] (and flush its batch) *before* blocking on any
//! real synchronization.  The engine parks a process at a barrier and
//! releases all of them — clocks aligned to the latest arrival — once every
//! unfinished process has arrived.  Violating the contract can deadlock the
//! engine against the workload threads (see `memhier-workloads`' `SpmdCtx`,
//! which upholds it).

use crate::backend::ClusterBackend;
use crate::event::MemEvent;
use crate::observe::{AccessObservation, BarrierObservation, ServiceLevel, SimObserver};
use crate::report::{LevelCounts, SimReport};
use crossbeam::channel::Receiver;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Where a logical processor's events come from.
pub enum ProcSource {
    /// A pre-materialized event list (tests, small traces).
    InMemory(VecDeque<MemEvent>),
    /// Batches streamed from a live workload thread.
    ///
    /// **Each channel must have its own producer thread** (the `spmd`
    /// harness guarantees this).  The engine consumes processors in
    /// simulated-time order and *blocks* on the laggard's channel; a single
    /// producer feeding several bounded channels can deadlock against that
    /// order when another processor's queue fills.
    Channel(Receiver<Vec<MemEvent>>),
}

impl ProcSource {
    /// Wrap an event vector.
    pub fn from_events(events: Vec<MemEvent>) -> Self {
        ProcSource::InMemory(events.into())
    }
}

struct ProcState {
    source: ProcSource,
    buf: VecDeque<MemEvent>,
    clock: u64,
    instructions: u64,
    refs: u64,
    finished: bool,
    at_barrier: bool,
}

impl ProcState {
    /// Next event, refilling from the source; `None` = stream exhausted.
    fn next_event(&mut self) -> Option<MemEvent> {
        if let Some(e) = self.buf.pop_front() {
            return Some(e);
        }
        match &mut self.source {
            ProcSource::InMemory(q) => q.pop_front(),
            ProcSource::Channel(rx) => loop {
                match rx.recv() {
                    Ok(batch) => {
                        if batch.is_empty() {
                            continue;
                        }
                        self.buf = batch.into();
                        return self.buf.pop_front();
                    }
                    Err(_) => return None,
                }
            },
        }
    }
}

/// Builder for one simulated run: a backend, one event source per
/// processor, and optional [`SimObserver`] taps.
///
/// ```no_run
/// use memhier_sim::{ProcSource, SimSession, TimeSeriesCollector};
/// # fn demo(backend: memhier_sim::ClusterBackend, sources: Vec<ProcSource>) {
/// let out = SimSession::new(backend)
///     .with_sources(sources)
///     .observe(TimeSeriesCollector::new(100_000))
///     .run();
/// println!("wall = {} cycles", out.report.wall_cycles);
/// let series = out.observer::<TimeSeriesCollector>().unwrap().series();
/// println!("{} windows", series.windows.len());
/// # }
/// ```
pub struct SimSession {
    backend: ClusterBackend,
    sources: Vec<ProcSource>,
    observers: Vec<Box<dyn SimObserver>>,
}

impl SimSession {
    /// Start a session on `backend` with no sources and no observers.
    pub fn new(backend: ClusterBackend) -> Self {
        SimSession {
            backend,
            sources: Vec::new(),
            observers: Vec::new(),
        }
    }

    /// Set the event sources; length must equal the backend's processor
    /// count by the time [`SimSession::run`] is called.
    pub fn with_sources(mut self, sources: Vec<ProcSource>) -> Self {
        self.sources = sources;
        self
    }

    /// Append a single event source.
    pub fn source(mut self, source: ProcSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Attach an observer.  Observers receive read-only snapshots and can
    /// never perturb simulated time.
    pub fn observe<O: SimObserver>(mut self, observer: O) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Attach an already-boxed observer (for dynamic configurations).
    pub fn observe_boxed(mut self, observer: Box<dyn SimObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Run to completion.  Panics unless `sources.len()` equals the
    /// backend's processor count.
    pub fn run(self) -> SessionOutput {
        let engine = Engine::build(self.backend, self.sources, self.observers);
        let (report, observers) = engine.run_inner();
        SessionOutput { report, observers }
    }
}

/// Result of [`SimSession::run`]: the final report plus the observers,
/// ready to be downcast back to their concrete types.
pub struct SessionOutput {
    /// The end-of-run aggregate report.
    pub report: SimReport,
    observers: Vec<Box<dyn SimObserver>>,
}

impl SessionOutput {
    /// Borrow the first attached observer of concrete type `T`.
    pub fn observer<T: SimObserver>(&self) -> Option<&T> {
        self.observers
            .iter()
            .find_map(|o| o.as_any().downcast_ref())
    }

    /// Mutably borrow the first attached observer of concrete type `T`.
    pub fn observer_mut<T: SimObserver>(&mut self) -> Option<&mut T> {
        self.observers
            .iter_mut()
            .find_map(|o| o.as_any_mut().downcast_mut())
    }
}

/// The simulation engine: a backend plus one event source per processor.
/// Prefer driving it through [`SimSession`].
pub struct Engine {
    backend: ClusterBackend,
    procs: Vec<ProcState>,
    barriers: u64,
    barrier_wait: u64,
    observers: Vec<Box<dyn SimObserver>>,
    last_counts: LevelCounts,
}

impl Engine {
    /// Build an engine; `sources.len()` must equal the backend's processor
    /// count.
    ///
    /// Deprecated: construct through the [`SimSession`] builder instead —
    /// it owns observer attachment and returns a [`SessionOutput`] whose
    /// typed `observer::<T>()` accessor replaces manual downcasting:
    ///
    /// ```ignore
    /// let out = SimSession::new(backend).with_sources(sources).run();
    /// let report = out.report;
    /// ```
    #[deprecated(note = "use `SimSession::new(backend).with_sources(sources)` instead")]
    pub fn new(backend: ClusterBackend, sources: Vec<ProcSource>) -> Self {
        Engine::build(backend, sources, Vec::new())
    }

    fn build(
        backend: ClusterBackend,
        sources: Vec<ProcSource>,
        observers: Vec<Box<dyn SimObserver>>,
    ) -> Self {
        assert_eq!(
            sources.len(),
            backend.total_procs(),
            "one event source per simulated processor"
        );
        let procs = sources
            .into_iter()
            .map(|source| ProcState {
                source,
                buf: VecDeque::new(),
                clock: 0,
                instructions: 0,
                refs: 0,
                finished: false,
                at_barrier: false,
            })
            .collect();
        Engine {
            backend,
            procs,
            barriers: 0,
            barrier_wait: 0,
            observers,
            last_counts: LevelCounts::default(),
        }
    }

    /// Release a resolved barrier: align every parked clock to the latest
    /// arrival and resume.
    fn release_barrier(&mut self, heap: &mut BinaryHeap<Reverse<(u64, usize)>>) {
        let max = self
            .procs
            .iter()
            .filter(|p| p.at_barrier)
            .map(|p| p.clock)
            .max()
            .expect("at least one process at the barrier");
        self.barriers += 1;
        let mut waits: Vec<(usize, u64)> = Vec::new();
        let observing = !self.observers.is_empty();
        for (i, p) in self.procs.iter_mut().enumerate() {
            if p.at_barrier {
                self.barrier_wait += max - p.clock;
                if observing {
                    waits.push((i, max - p.clock));
                }
                p.clock = max;
                p.at_barrier = false;
                heap.push(Reverse((p.clock, i)));
            }
        }
        if observing {
            let obs = BarrierObservation {
                release_clock: max,
                waits: &waits,
            };
            for o in &mut self.observers {
                o.on_barrier(&obs);
            }
        }
    }

    /// Whether every unfinished process is parked at the barrier.
    fn barrier_ready(&self) -> bool {
        let mut any = false;
        for p in &self.procs {
            if p.finished {
                continue;
            }
            if !p.at_barrier {
                return false;
            }
            any = true;
        }
        any
    }

    /// Snapshot the backend around the access just completed and fan it
    /// out to every observer.  Only called when observers are attached.
    fn notify_access(&mut self, proc: usize, addr: u64, write: bool, issue_clock: u64, lat: u64) {
        let counts = self.backend.counts();
        let obs = AccessObservation {
            proc,
            addr,
            write,
            issue_clock,
            complete_clock: issue_clock + 1 + lat,
            mem_cycles: lat,
            level: ServiceLevel::classify(&self.last_counts, &counts),
            paged: counts.disk > self.last_counts.disk,
            upgraded: counts.upgrades > self.last_counts.upgrades,
            counts,
            traffic: self.backend.traffic(),
            bus_busy_cycles: self.backend.total_bus_busy_cycles(),
            network_busy_cycles: self.backend.network_busy_cycles(),
            io_busy_cycles: self.backend.total_io_busy_cycles(),
        };
        self.last_counts = counts;
        for o in &mut self.observers {
            o.on_access(&obs);
        }
    }

    /// Run to completion and report (observers, if any, are dropped; use
    /// [`SimSession::run`] to get them back).
    pub fn run(self) -> SimReport {
        self.run_inner().0
    }

    fn run_inner(mut self) -> (SimReport, Vec<Box<dyn SimObserver>>) {
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for i in 0..self.procs.len() {
            heap.push(Reverse((0, i)));
        }
        let observing = !self.observers.is_empty();
        while let Some(Reverse((clock, i))) = heap.pop() {
            debug_assert_eq!(clock, self.procs[i].clock);
            match self.procs[i].next_event() {
                None => {
                    self.procs[i].finished = true;
                    // A finishing process may complete a pending barrier.
                    if self.barrier_ready() {
                        self.release_barrier(&mut heap);
                    }
                }
                Some(MemEvent::Compute(k)) => {
                    let p = &mut self.procs[i];
                    p.clock += k as u64;
                    p.instructions += k as u64;
                    heap.push(Reverse((p.clock, i)));
                }
                // A memory instruction costs 1 cycle to execute (the
                // paper's "one instruction execution: 1") plus the memory
                // time returned by the backend (which includes the 1-cycle
                // cache access) — exactly the model's `1/S + ρ·T` split.
                Some(MemEvent::Read(a)) => {
                    let lat = self.backend.access(i, a, false, clock);
                    let p = &mut self.procs[i];
                    p.clock += 1 + lat;
                    p.instructions += 1;
                    p.refs += 1;
                    heap.push(Reverse((p.clock, i)));
                    if observing {
                        self.notify_access(i, a, false, clock, lat);
                    }
                }
                Some(MemEvent::Write(a)) => {
                    let lat = self.backend.access(i, a, true, clock);
                    let p = &mut self.procs[i];
                    p.clock += 1 + lat;
                    p.instructions += 1;
                    p.refs += 1;
                    heap.push(Reverse((p.clock, i)));
                    if observing {
                        self.notify_access(i, a, true, clock, lat);
                    }
                }
                Some(MemEvent::Barrier) => {
                    self.procs[i].at_barrier = true;
                    if self.barrier_ready() {
                        self.release_barrier(&mut heap);
                    }
                }
            }
        }
        self.finish()
    }

    fn finish(mut self) -> (SimReport, Vec<Box<dyn SimObserver>>) {
        let proc_cycles: Vec<u64> = self.procs.iter().map(|p| p.clock).collect();
        let wall = proc_cycles.iter().copied().max().unwrap_or(0);
        let total_instructions: u64 = self.procs.iter().map(|p| p.instructions).sum();
        let total_refs: u64 = self.procs.iter().map(|p| p.refs).sum();
        let e_cycles = if total_instructions == 0 {
            0.0
        } else {
            wall as f64 / total_instructions as f64
        };
        let report = SimReport {
            wall_cycles: wall,
            proc_cycles,
            total_instructions,
            total_refs,
            e_instr_cycles: e_cycles,
            e_instr_seconds: e_cycles / self.backend.clock_hz(),
            levels: self.backend.counts(),
            traffic: self.backend.traffic(),
            barriers: self.barriers,
            barrier_wait_cycles: self.barrier_wait,
            bus_busy_cycles: self.backend.bus_busy_cycles(),
            network_busy_cycles: self.backend.network_busy_cycles(),
            io_busy_cycles: self.backend.io_busy_cycles(),
        };
        for o in &mut self.observers {
            o.on_finish(&report);
        }
        (report, self.observers)
    }
}

/// Convenience: build and run in one call.
///
/// Deprecated: no longer re-exported from the crate root.  The
/// [`SimSession`] builder is the supported entry point and the one the
/// rest of the workspace (CLI, bench harness, `memhierd`) uses:
///
/// ```ignore
/// let report = SimSession::new(backend).with_sources(sources).run().report;
/// ```
#[deprecated(note = "use `SimSession::new(backend).with_sources(sources).run().report` instead")]
pub fn run_simulation(backend: ClusterBackend, sources: Vec<ProcSource>) -> SimReport {
    SimSession::new(backend).with_sources(sources).run().report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homemap::HomeMap;
    use crate::observe::{EventTracer, NopObserver, TimeSeriesCollector, TraceKind};
    use crossbeam::channel;
    use memhier_core::machine::{LatencyParams, MachineSpec};
    use memhier_core::platform::ClusterSpec;

    fn smp_backend(n: u32) -> ClusterBackend {
        let c = ClusterSpec::single(MachineSpec::new(n, 256, 64, 200.0));
        ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(1, 256))
    }

    fn run_sim(backend: ClusterBackend, sources: Vec<ProcSource>) -> SimReport {
        SimSession::new(backend).with_sources(sources).run().report
    }

    #[test]
    fn compute_only_stream() {
        let backend = smp_backend(1);
        let src = ProcSource::from_events(vec![MemEvent::Compute(100), MemEvent::Compute(50)]);
        let r = run_sim(backend, vec![src]);
        assert_eq!(r.wall_cycles, 150);
        assert_eq!(r.total_instructions, 150);
        assert_eq!(r.e_instr_cycles, 1.0);
        assert_eq!(r.total_refs, 0);
    }

    #[test]
    fn memory_latency_accumulates() {
        let backend = smp_backend(1);
        // Cold read: 1 + 50 + 2000; warm same-line read: 1.
        let src = ProcSource::from_events(vec![MemEvent::Read(0), MemEvent::Read(0)]);
        let r = run_sim(backend, vec![src]);
        // Cold: 1 (instr) + 2051 (mem).  Warm: 1 (instr) + 1 (hit).
        assert_eq!(r.wall_cycles, 2052 + 2);
        assert_eq!(r.total_refs, 2);
        assert_eq!(r.levels.l1_hits, 1);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let backend = smp_backend(2);
        // Proc 0 computes 1000, proc 1 computes 10; both barrier, then
        // each computes 5 more.
        let s0 = ProcSource::from_events(vec![
            MemEvent::Compute(1000),
            MemEvent::Barrier,
            MemEvent::Compute(5),
        ]);
        let s1 = ProcSource::from_events(vec![
            MemEvent::Compute(10),
            MemEvent::Barrier,
            MemEvent::Compute(5),
        ]);
        let r = run_sim(backend, vec![s0, s1]);
        assert_eq!(r.wall_cycles, 1005);
        assert_eq!(r.proc_cycles, vec![1005, 1005]);
        assert_eq!(r.barriers, 1);
        assert_eq!(r.barrier_wait_cycles, 990);
    }

    #[test]
    fn unbalanced_finish_releases_barrier() {
        // Proc 1 ends without reaching the barrier; proc 0 must still
        // complete (the barrier degenerates to a self-barrier).
        let backend = smp_backend(2);
        let s0 = ProcSource::from_events(vec![
            MemEvent::Compute(10),
            MemEvent::Barrier,
            MemEvent::Compute(1),
        ]);
        let s1 = ProcSource::from_events(vec![MemEvent::Compute(3)]);
        let r = run_sim(backend, vec![s0, s1]);
        assert_eq!(r.proc_cycles[0], 11);
        assert_eq!(r.barriers, 1);
    }

    #[test]
    fn channel_sources_stream() {
        // One producer thread per channel — the engine's documented
        // requirement (a single producer for several bounded channels can
        // deadlock against the engine's time-ordered consumption).
        let backend = smp_backend(2);
        let (tx0, rx0) = channel::bounded(4);
        let (tx1, rx1) = channel::bounded(4);
        let f0 = std::thread::spawn(move || {
            for i in 0..10u64 {
                tx0.send(vec![MemEvent::Read(i * 64), MemEvent::Compute(3)])
                    .unwrap();
            }
        });
        let f1 = std::thread::spawn(move || {
            for i in 0..10u64 {
                tx1.send(vec![MemEvent::Read(i * 64 + 8192), MemEvent::Compute(3)])
                    .unwrap();
            }
        });
        let r = run_sim(
            backend,
            vec![ProcSource::Channel(rx0), ProcSource::Channel(rx1)],
        );
        f0.join().unwrap();
        f1.join().unwrap();
        assert_eq!(r.total_refs, 20);
        assert_eq!(r.total_instructions, 20 + 60);
    }

    #[test]
    fn contention_visible_in_wall_clock() {
        // Two processors issuing simultaneous misses must take longer than
        // one processor issuing the same misses alone (bus queueing),
        // per-processor.  Address regions are disjoint (1 MB apart) so no
        // page or line is shared between processors.
        let mk = |n: u32, procs: usize| {
            let backend = smp_backend(n);
            let sources: Vec<ProcSource> = (0..procs)
                .map(|p| {
                    ProcSource::from_events(
                        (0..200u64)
                            .map(|i| MemEvent::Read(p as u64 * (1 << 20) + i * 64))
                            .collect(),
                    )
                })
                .collect();
            run_sim(backend, sources)
        };
        let solo = mk(1, 1);
        let duo = mk(2, 2);
        // Per-proc time in the contended run exceeds the solo run.
        assert!(
            duo.proc_cycles[0] > solo.proc_cycles[0],
            "duo {} vs solo {}",
            duo.proc_cycles[0],
            solo.proc_cycles[0]
        );
    }

    #[test]
    fn e_instr_seconds_uses_clock() {
        let backend = smp_backend(1);
        let src = ProcSource::from_events(vec![MemEvent::Compute(100)]);
        let r = run_sim(backend, vec![src]);
        assert!((r.e_instr_seconds - 1.0 / 2e8).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "one event source per")]
    fn source_count_checked() {
        let backend = smp_backend(2);
        let _ = SimSession::new(backend)
            .source(ProcSource::from_events(vec![]))
            .run();
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_session() {
        let mk_sources = || {
            vec![ProcSource::from_events(
                (0..50u64).map(|i| MemEvent::Read(i * 64)).collect(),
            )]
        };
        let via_shim = run_simulation(smp_backend(1), mk_sources());
        let via_session = run_sim(smp_backend(1), mk_sources());
        assert_eq!(via_shim, via_session);
    }

    #[test]
    fn nop_observer_changes_nothing() {
        let mk_sources = || {
            vec![ProcSource::from_events(
                (0..100u64)
                    .map(|i| {
                        if i % 3 == 0 {
                            MemEvent::Write(i * 64)
                        } else {
                            MemEvent::Read(i * 32)
                        }
                    })
                    .collect(),
            )]
        };
        let bare = run_sim(smp_backend(1), mk_sources());
        let observed = SimSession::new(smp_backend(1))
            .with_sources(mk_sources())
            .observe(NopObserver)
            .run();
        assert_eq!(bare, observed.report);
    }

    #[test]
    fn collector_reconciles_with_report() {
        let sources = vec![
            ProcSource::from_events(
                (0..300u64)
                    .map(|i| MemEvent::Read(i * 64))
                    .chain([MemEvent::Barrier, MemEvent::Compute(10)])
                    .collect(),
            ),
            ProcSource::from_events(
                (0..50u64)
                    .map(|i| MemEvent::Write(i * 64))
                    .chain([MemEvent::Barrier, MemEvent::Compute(10)])
                    .collect(),
            ),
        ];
        let out = SimSession::new(smp_backend(2))
            .with_sources(sources)
            .observe(TimeSeriesCollector::new(1000))
            .run();
        let series = out.observer::<TimeSeriesCollector>().unwrap().series();
        let sum = |f: fn(&crate::observe::MetricsWindow) -> u64| -> u64 {
            series.windows.iter().map(f).sum()
        };
        assert_eq!(sum(|w| w.refs), out.report.total_refs);
        assert_eq!(sum(|w| w.l1_hits), out.report.levels.l1_hits);
        assert_eq!(sum(|w| w.local_memory), out.report.levels.local_memory);
        assert_eq!(sum(|w| w.upgrades), out.report.levels.upgrades);
        assert_eq!(sum(|w| w.data_bytes), out.report.traffic.data_bytes);
        assert_eq!(
            sum(|w| w.coherence_bytes),
            out.report.traffic.coherence_bytes
        );
        assert_eq!(
            sum(|w| w.barrier_wait_cycles),
            out.report.barrier_wait_cycles
        );
        assert_eq!(
            sum(|w| w.bus_busy_cycles),
            out.report.bus_busy_cycles.iter().sum::<u64>()
        );
        // Per-proc refs reconcile too.
        let proc_refs: u64 = series.per_proc.iter().map(|p| p.refs).sum();
        assert_eq!(proc_refs, out.report.total_refs);
        assert_eq!(series.totals.wall_cycles, out.report.wall_cycles);
    }

    #[test]
    fn tracer_records_accesses_and_barriers() {
        let sources = vec![
            ProcSource::from_events(vec![
                MemEvent::Read(0),
                MemEvent::Barrier,
                MemEvent::Read(64),
            ]),
            ProcSource::from_events(vec![
                MemEvent::Compute(5),
                MemEvent::Barrier,
                MemEvent::Read(8192),
            ]),
        ];
        let out = SimSession::new(smp_backend(2))
            .with_sources(sources)
            .observe(EventTracer::new(64))
            .run();
        let log = out.observer::<EventTracer>().unwrap().log();
        let accesses = log
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::Access)
            .count();
        let barriers = log
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::Barrier)
            .count();
        assert_eq!(accesses as u64, out.report.total_refs);
        assert_eq!(barriers as u64, out.report.barriers);
        assert_eq!(log.dropped, 0);
        // JSONL round-trips through the parser.
        for line in log.to_jsonl().lines() {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }
    }
}
