//! The program-driven SPMD execution engine.
//!
//! Each logical processor's instruction stream arrives as a sequence of
//! [`MemEvent`]s, either in memory or over a bounded crossbeam channel from
//! a live workload thread.  The engine advances processors in **simulated
//! time order** (a conservative discrete-event loop keyed on per-processor
//! clocks), so shared-resource queueing in the backend sees requests in the
//! order the simulated machine would issue them.
//!
//! The hot loop replays events in **chunks**: each processor's stream is a
//! flat buffer consumed by cursor (no per-event queue traffic), and the
//! scheduler is a linear scan over per-processor ready clocks that also
//! returns the *runner-up* — the winning processor then replays a whole run
//! of events inline until its clock catches up with the runner-up, which
//! amortizes scheduling across the run.  Because no other processor's
//! clock can change while it runs, the event order is exactly the one the
//! old per-event priority queue produced (min `(clock, index)` first).
//!
//! The entry point is the [`SimSession`] builder: backend + one source per
//! processor + any number of [`SimObserver`] taps.  With no observers the
//! hot loop takes no snapshots at all — observability is strictly
//! pay-for-what-you-use.
//!
//! **Barrier contract:** a workload thread must emit
//! [`MemEvent::Barrier`] (and flush its batch) *before* blocking on any
//! real synchronization.  The engine parks a process at a barrier and
//! releases all of them — clocks aligned to the latest arrival — once every
//! unfinished process has arrived.  Violating the contract can deadlock the
//! engine against the workload threads (see `memhier-workloads`' `SpmdCtx`,
//! which upholds it).

use crate::backend::ClusterBackend;
use crate::event::MemEvent;
use crate::observe::{AccessObservation, BarrierObservation, ServiceLevel, SimObserver};
use crate::report::{LevelCounts, SimReport};
use crossbeam::channel::Receiver;
use std::sync::Arc;

/// Where a logical processor's events come from.
pub enum ProcSource {
    /// A pre-materialized event list (tests, small traces).
    InMemory(Vec<MemEvent>),
    /// A pre-materialized event list shared by reference count — replaying
    /// the same trace across many runs (benchmarks, sweeps over platform
    /// configurations) costs a pointer copy instead of cloning the whole
    /// buffer each time.
    Shared(Arc<[MemEvent]>),
    /// Batches streamed from a live workload thread.
    ///
    /// **Each channel must have its own producer thread** (the `spmd`
    /// harness guarantees this).  The engine consumes processors in
    /// simulated-time order and *blocks* on the laggard's channel; a single
    /// producer feeding several bounded channels can deadlock against that
    /// order when another processor's queue fills.
    Channel(Receiver<Vec<MemEvent>>),
}

impl ProcSource {
    /// Wrap an event vector.
    pub fn from_events(events: Vec<MemEvent>) -> Self {
        ProcSource::InMemory(events)
    }

    /// Wrap a shared event buffer (cheap to clone per replay).
    pub fn shared(events: Arc<[MemEvent]>) -> Self {
        ProcSource::Shared(events)
    }
}

/// A replay buffer the engine consumes by cursor — either an owned batch
/// or a refcounted shared trace.  Never popped element-by-element.
enum ReplayBuf {
    Owned(Vec<MemEvent>),
    Shared(Arc<[MemEvent]>),
}

impl ReplayBuf {
    #[inline]
    fn as_slice(&self) -> &[MemEvent] {
        match self {
            ReplayBuf::Owned(v) => v,
            ReplayBuf::Shared(s) => s,
        }
    }
}

struct ProcState {
    /// Live producer channel; dropped once it disconnects.
    channel: Option<Receiver<Vec<MemEvent>>>,
    /// Current replay buffer, consumed by cursor.
    buf: ReplayBuf,
    pos: usize,
    clock: u64,
    instructions: u64,
    refs: u64,
    finished: bool,
    at_barrier: bool,
}

impl ProcState {
    fn new(source: ProcSource) -> Self {
        let (channel, buf) = match source {
            ProcSource::InMemory(events) => (None, ReplayBuf::Owned(events)),
            ProcSource::Shared(events) => (None, ReplayBuf::Shared(events)),
            ProcSource::Channel(rx) => (Some(rx), ReplayBuf::Owned(Vec::new())),
        };
        ProcState {
            channel,
            buf,
            pos: 0,
            clock: 0,
            instructions: 0,
            refs: 0,
            finished: false,
            at_barrier: false,
        }
    }

    /// Next event, refilling the buffer from the channel when it runs dry;
    /// `None` = stream exhausted.
    #[inline]
    fn next_event(&mut self) -> Option<MemEvent> {
        loop {
            if let Some(&e) = self.buf.as_slice().get(self.pos) {
                self.pos += 1;
                return Some(e);
            }
            let rx = self.channel.as_ref()?;
            match rx.recv() {
                Ok(batch) => {
                    // Empty batches (a producer-side flush with nothing
                    // pending) are skipped by looping.
                    self.buf = ReplayBuf::Owned(batch);
                    self.pos = 0;
                }
                Err(_) => {
                    self.channel = None;
                    return None;
                }
            }
        }
    }
}

/// Builder for one simulated run: a backend, one event source per
/// processor, and optional [`SimObserver`] taps.
///
/// ```no_run
/// use memhier_sim::{ProcSource, SimSession, TimeSeriesCollector};
/// # fn demo(backend: memhier_sim::ClusterBackend, sources: Vec<ProcSource>) {
/// let out = SimSession::new(backend)
///     .with_sources(sources)
///     .observe(TimeSeriesCollector::new(100_000))
///     .run();
/// println!("wall = {} cycles", out.report.wall_cycles);
/// let series = out.observer::<TimeSeriesCollector>().unwrap().series();
/// println!("{} windows", series.windows.len());
/// # }
/// ```
pub struct SimSession {
    backend: ClusterBackend,
    sources: Vec<ProcSource>,
    observers: Vec<Box<dyn SimObserver>>,
    sim_threads: usize,
}

impl SimSession {
    /// Start a session on `backend` with no sources and no observers.
    pub fn new(backend: ClusterBackend) -> Self {
        SimSession {
            backend,
            sources: Vec::new(),
            observers: Vec::new(),
            sim_threads: 0,
        }
    }

    /// Set the event sources; length must equal the backend's processor
    /// count by the time [`SimSession::run`] is called.
    pub fn with_sources(mut self, sources: Vec<ProcSource>) -> Self {
        self.sources = sources;
        self
    }

    /// Append a single event source.
    pub fn source(mut self, source: ProcSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Attach an observer.  Observers receive read-only snapshots and can
    /// never perturb simulated time.
    pub fn observe<O: SimObserver>(mut self, observer: O) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Attach an already-boxed observer (for dynamic configurations).
    pub fn observe_boxed(mut self, observer: Box<dyn SimObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Select the engine: `0` (the default) runs the classic conservative
    /// engine in this module; any `n ≥ 1` runs the epoch-parallel engine
    /// (see [`crate::epoch`]) with `n` host threads.  The epoch engine's
    /// results are identical for every `n` — the thread count is a host
    /// resource knob, never a simulated parameter.
    pub fn sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads;
        self
    }

    /// Run to completion.  Panics unless `sources.len()` equals the
    /// backend's processor count.
    pub fn run(self) -> SessionOutput {
        if self.sim_threads > 0 {
            return crate::epoch::run_epoch(
                self.backend,
                self.sources,
                self.observers,
                self.sim_threads,
            );
        }
        let engine = Engine::build(self.backend, self.sources, self.observers);
        let (report, observers) = engine.run_inner();
        SessionOutput { report, observers }
    }
}

/// Result of [`SimSession::run`]: the final report plus the observers,
/// ready to be downcast back to their concrete types.
pub struct SessionOutput {
    /// The end-of-run aggregate report.
    pub report: SimReport,
    observers: Vec<Box<dyn SimObserver>>,
}

impl SessionOutput {
    /// Assemble an output from a finished engine's parts (epoch engine).
    pub(crate) fn from_parts(report: SimReport, observers: Vec<Box<dyn SimObserver>>) -> Self {
        SessionOutput { report, observers }
    }

    /// Borrow the first attached observer of concrete type `T`.
    pub fn observer<T: SimObserver>(&self) -> Option<&T> {
        self.observers
            .iter()
            .find_map(|o| o.as_any().downcast_ref())
    }

    /// Mutably borrow the first attached observer of concrete type `T`.
    pub fn observer_mut<T: SimObserver>(&mut self) -> Option<&mut T> {
        self.observers
            .iter_mut()
            .find_map(|o| o.as_any_mut().downcast_mut())
    }

    /// Remove and return the first attached observer of concrete type
    /// `T`, yielding ownership — the escape hatch for observers holding
    /// resources that must be finalized (an open trace file, a socket).
    pub fn take_observer<T: SimObserver>(&mut self) -> Option<Box<T>> {
        let idx = self.observers.iter().position(|o| o.as_any().is::<T>())?;
        self.observers.swap_remove(idx).into_any().downcast().ok()
    }
}

/// Sentinel ready-clock for a processor that cannot run (finished or
/// parked at a barrier).  Simulated clocks never reach it.
const PARKED: u64 = u64::MAX;

/// Why a replay run ended.
enum RunEnd {
    /// Clock passed the runner-up; the processor stays runnable.
    Yield,
    /// Parked at a barrier.
    Barrier,
    /// Event stream exhausted.
    Finished,
}

/// The simulation engine: a backend plus one event source per processor.
/// Internal — drive it through [`SimSession`].
struct Engine {
    backend: ClusterBackend,
    procs: Vec<ProcState>,
    barriers: u64,
    barrier_wait: u64,
    observers: Vec<Box<dyn SimObserver>>,
    last_counts: LevelCounts,
}

impl Engine {
    fn build(
        backend: ClusterBackend,
        sources: Vec<ProcSource>,
        observers: Vec<Box<dyn SimObserver>>,
    ) -> Self {
        assert_eq!(
            sources.len(),
            backend.total_procs(),
            "one event source per simulated processor"
        );
        let procs = sources.into_iter().map(ProcState::new).collect();
        Engine {
            backend,
            procs,
            barriers: 0,
            barrier_wait: 0,
            observers,
            last_counts: LevelCounts::default(),
        }
    }

    /// Release a resolved barrier: align every parked clock to the latest
    /// arrival and resume (ready clocks in `keys` updated to match).
    fn release_barrier(&mut self, keys: &mut [u64]) {
        let max = self
            .procs
            .iter()
            .filter(|p| p.at_barrier)
            .map(|p| p.clock)
            .max()
            .expect("at least one process at the barrier");
        self.barriers += 1;
        let mut waits: Vec<(usize, u64)> = Vec::new();
        let observing = !self.observers.is_empty();
        for (i, p) in self.procs.iter_mut().enumerate() {
            if p.at_barrier {
                self.barrier_wait += max - p.clock;
                if observing {
                    waits.push((i, max - p.clock));
                }
                p.clock = max;
                p.at_barrier = false;
                keys[i] = max;
            }
        }
        if observing {
            let obs = BarrierObservation {
                release_clock: max,
                waits: &waits,
            };
            for o in &mut self.observers {
                o.on_barrier(&obs);
            }
        }
    }

    /// Whether every unfinished process is parked at the barrier.
    fn barrier_ready(&self) -> bool {
        let mut any = false;
        for p in &self.procs {
            if p.finished {
                continue;
            }
            if !p.at_barrier {
                return false;
            }
            any = true;
        }
        any
    }

    /// Snapshot the backend around the access just completed and fan it
    /// out to every observer.  Only called when observers are attached.
    fn notify_access(&mut self, proc: usize, addr: u64, write: bool, issue_clock: u64, lat: u64) {
        let counts = self.backend.counts();
        let obs = AccessObservation {
            proc,
            addr,
            write,
            issue_clock,
            complete_clock: issue_clock + 1 + lat,
            mem_cycles: lat,
            level: ServiceLevel::classify(&self.last_counts, &counts),
            paged: counts.disk > self.last_counts.disk,
            upgraded: counts.upgrades > self.last_counts.upgrades,
            counts,
            traffic: self.backend.traffic(),
            bus_busy_cycles: self.backend.total_bus_busy_cycles(),
            network_busy_cycles: self.backend.network_busy_cycles(),
            io_busy_cycles: self.backend.total_io_busy_cycles(),
        };
        self.last_counts = counts;
        for o in &mut self.observers {
            o.on_access(&obs);
        }
    }

    fn run_inner(mut self) -> (SimReport, Vec<Box<dyn SimObserver>>) {
        let observing = !self.observers.is_empty();
        // `keys[i]` is the simulated time at which processor i may next
        // act, or PARKED.  Processor count is small (the paper's platforms
        // top out at a few dozen), so a linear scan beats a heap — and one
        // scan yields both the lexicographic minimum of (clock, index) and
        // the runner-up, which bounds how long the winner may replay
        // events inline before any other processor could act.
        let mut keys: Vec<u64> = vec![0; self.procs.len()];
        loop {
            let mut bi = 0usize;
            let mut bc = PARKED;
            let mut si = 0usize;
            let mut sc = PARKED;
            for (j, &c) in keys.iter().enumerate() {
                if c < bc {
                    sc = bc;
                    si = bi;
                    bc = c;
                    bi = j;
                } else if c < sc {
                    sc = c;
                    si = j;
                }
            }
            if bc == PARKED {
                break;
            }
            let i = bi;
            debug_assert_eq!(self.procs[i].clock, bc);
            // Replay a run: processor i stays first in (clock, index)
            // order until its clock passes the runner-up's — no other
            // clock moves meanwhile, so this is exactly the order a
            // per-event priority queue would produce.
            let end = if observing {
                self.run_observed(i, si, sc)
            } else {
                self.run_fast(i, si, sc)
            };
            match end {
                RunEnd::Yield => keys[i] = self.procs[i].clock,
                RunEnd::Barrier | RunEnd::Finished => {
                    keys[i] = PARKED;
                    // A finishing process may complete a pending barrier.
                    if self.barrier_ready() {
                        self.release_barrier(&mut keys);
                    }
                }
            }
        }
        self.finish()
    }

    /// The observer-free hot loop: replay processor `i`'s events until it
    /// can no longer be first in `(clock, index)` order, with the proc
    /// state hoisted into locals and the buffer viewed as one slice.
    ///
    /// The lexicographic continuation test `(clock, i) < (sc, si)`
    /// collapses to `clock <= limit` with `limit = sc` when `i < si` and
    /// `sc - 1` otherwise.  `sc - 1` cannot underflow: the scan only
    /// leaves `si < i` when the runner-up was a displaced earlier winner,
    /// which forces `sc` strictly above the winning clock, hence `sc >= 1`.
    #[inline(always)]
    fn run_fast(&mut self, i: usize, si: usize, sc: u64) -> RunEnd {
        let backend = &mut self.backend;
        let p = &mut self.procs[i];
        let mut clock = p.clock;
        let mut instructions = p.instructions;
        let mut refs = p.refs;
        let limit = if i < si { sc } else { sc - 1 };
        let end = 'run: loop {
            let slice = p.buf.as_slice();
            let mut pos = p.pos;
            while let Some(&e) = slice.get(pos) {
                pos += 1;
                // Memory references dominate the stream, so test for them
                // with one compare-chain branch instead of letting the
                // four-way match become an indirect jump-table dispatch
                // (which mispredicts on mixed read/write/compute runs).
                match e {
                    // A memory instruction costs 1 cycle to execute (the
                    // paper's "one instruction execution: 1") plus the
                    // memory time returned by the backend (which includes
                    // the 1-cycle cache access) — exactly the model's
                    // `1/S + ρ·T` split.
                    MemEvent::Read(a) | MemEvent::Write(a) => {
                        let write = matches!(e, MemEvent::Write(_));
                        let lat = backend.access(i, a, write, clock);
                        clock += 1 + lat;
                        instructions += 1;
                        refs += 1;
                    }
                    MemEvent::Compute(k) => {
                        clock += k as u64;
                        instructions += k as u64;
                    }
                    MemEvent::Barrier => {
                        p.pos = pos;
                        p.at_barrier = true;
                        break 'run RunEnd::Barrier;
                    }
                }
                if clock > limit {
                    p.pos = pos;
                    break 'run RunEnd::Yield;
                }
            }
            p.pos = pos;
            match p.channel.as_ref() {
                None => {
                    p.finished = true;
                    break RunEnd::Finished;
                }
                Some(rx) => match rx.recv() {
                    Ok(batch) => {
                        // Empty batches (a producer-side flush with nothing
                        // pending) fall through to the next recv.
                        p.buf = ReplayBuf::Owned(batch);
                        p.pos = 0;
                    }
                    Err(_) => {
                        p.channel = None;
                        p.finished = true;
                        break RunEnd::Finished;
                    }
                },
            }
        };
        p.clock = clock;
        p.instructions = instructions;
        p.refs = refs;
        end
    }

    /// The same run loop with per-access observer snapshots.  Kept as a
    /// separate per-event path because snapshotting borrows the whole
    /// engine; simulated results are identical to [`Engine::run_fast`].
    fn run_observed(&mut self, i: usize, si: usize, sc: u64) -> RunEnd {
        loop {
            let clock = self.procs[i].clock;
            match self.procs[i].next_event() {
                None => {
                    self.procs[i].finished = true;
                    return RunEnd::Finished;
                }
                Some(MemEvent::Compute(k)) => {
                    let p = &mut self.procs[i];
                    p.clock += k as u64;
                    p.instructions += k as u64;
                }
                Some(MemEvent::Read(a)) => {
                    let lat = self.backend.access(i, a, false, clock);
                    let p = &mut self.procs[i];
                    p.clock += 1 + lat;
                    p.instructions += 1;
                    p.refs += 1;
                    self.notify_access(i, a, false, clock, lat);
                }
                Some(MemEvent::Write(a)) => {
                    let lat = self.backend.access(i, a, true, clock);
                    let p = &mut self.procs[i];
                    p.clock += 1 + lat;
                    p.instructions += 1;
                    p.refs += 1;
                    self.notify_access(i, a, true, clock, lat);
                }
                Some(MemEvent::Barrier) => {
                    self.procs[i].at_barrier = true;
                    return RunEnd::Barrier;
                }
            }
            let c = self.procs[i].clock;
            if !(c < sc || (c == sc && i < si)) {
                return RunEnd::Yield;
            }
        }
    }

    fn finish(mut self) -> (SimReport, Vec<Box<dyn SimObserver>>) {
        let proc_cycles: Vec<u64> = self.procs.iter().map(|p| p.clock).collect();
        let wall = proc_cycles.iter().copied().max().unwrap_or(0);
        let total_instructions: u64 = self.procs.iter().map(|p| p.instructions).sum();
        let total_refs: u64 = self.procs.iter().map(|p| p.refs).sum();
        let e_cycles = if total_instructions == 0 {
            0.0
        } else {
            wall as f64 / total_instructions as f64
        };
        let report = SimReport {
            wall_cycles: wall,
            proc_cycles,
            total_instructions,
            total_refs,
            e_instr_cycles: e_cycles,
            e_instr_seconds: e_cycles / self.backend.clock_hz(),
            levels: self.backend.counts(),
            traffic: self.backend.traffic(),
            barriers: self.barriers,
            barrier_wait_cycles: self.barrier_wait,
            bus_busy_cycles: self.backend.bus_busy_cycles(),
            network_busy_cycles: self.backend.network_busy_cycles(),
            io_busy_cycles: self.backend.io_busy_cycles(),
        };
        for o in &mut self.observers {
            o.on_finish(&report);
        }
        (report, self.observers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homemap::HomeMap;
    use crate::observe::{EventTracer, NopObserver, TimeSeriesCollector, TraceKind};
    use crossbeam::channel;
    use memhier_core::machine::{LatencyParams, MachineSpec};
    use memhier_core::platform::ClusterSpec;

    fn smp_backend(n: u32) -> ClusterBackend {
        let c = ClusterSpec::single(MachineSpec::new(n, 256, 64, 200.0));
        ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(1, 256))
    }

    fn run_sim(backend: ClusterBackend, sources: Vec<ProcSource>) -> SimReport {
        SimSession::new(backend).with_sources(sources).run().report
    }

    #[test]
    fn compute_only_stream() {
        let backend = smp_backend(1);
        let src = ProcSource::from_events(vec![MemEvent::Compute(100), MemEvent::Compute(50)]);
        let r = run_sim(backend, vec![src]);
        assert_eq!(r.wall_cycles, 150);
        assert_eq!(r.total_instructions, 150);
        assert_eq!(r.e_instr_cycles, 1.0);
        assert_eq!(r.total_refs, 0);
    }

    #[test]
    fn memory_latency_accumulates() {
        let backend = smp_backend(1);
        // Cold read: 1 + 50 + 2000; warm same-line read: 1.
        let src = ProcSource::from_events(vec![MemEvent::Read(0), MemEvent::Read(0)]);
        let r = run_sim(backend, vec![src]);
        // Cold: 1 (instr) + 2051 (mem).  Warm: 1 (instr) + 1 (hit).
        assert_eq!(r.wall_cycles, 2052 + 2);
        assert_eq!(r.total_refs, 2);
        assert_eq!(r.levels.l1_hits, 1);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let backend = smp_backend(2);
        // Proc 0 computes 1000, proc 1 computes 10; both barrier, then
        // each computes 5 more.
        let s0 = ProcSource::from_events(vec![
            MemEvent::Compute(1000),
            MemEvent::Barrier,
            MemEvent::Compute(5),
        ]);
        let s1 = ProcSource::from_events(vec![
            MemEvent::Compute(10),
            MemEvent::Barrier,
            MemEvent::Compute(5),
        ]);
        let r = run_sim(backend, vec![s0, s1]);
        assert_eq!(r.wall_cycles, 1005);
        assert_eq!(r.proc_cycles, vec![1005, 1005]);
        assert_eq!(r.barriers, 1);
        assert_eq!(r.barrier_wait_cycles, 990);
    }

    #[test]
    fn unbalanced_finish_releases_barrier() {
        // Proc 1 ends without reaching the barrier; proc 0 must still
        // complete (the barrier degenerates to a self-barrier).
        let backend = smp_backend(2);
        let s0 = ProcSource::from_events(vec![
            MemEvent::Compute(10),
            MemEvent::Barrier,
            MemEvent::Compute(1),
        ]);
        let s1 = ProcSource::from_events(vec![MemEvent::Compute(3)]);
        let r = run_sim(backend, vec![s0, s1]);
        assert_eq!(r.proc_cycles[0], 11);
        assert_eq!(r.barriers, 1);
    }

    #[test]
    fn channel_sources_stream() {
        // One producer thread per channel — the engine's documented
        // requirement (a single producer for several bounded channels can
        // deadlock against the engine's time-ordered consumption).
        let backend = smp_backend(2);
        let (tx0, rx0) = channel::bounded(4);
        let (tx1, rx1) = channel::bounded(4);
        let f0 = std::thread::spawn(move || {
            for i in 0..10u64 {
                tx0.send(vec![MemEvent::Read(i * 64), MemEvent::Compute(3)])
                    .unwrap();
            }
        });
        let f1 = std::thread::spawn(move || {
            for i in 0..10u64 {
                tx1.send(vec![MemEvent::Read(i * 64 + 8192), MemEvent::Compute(3)])
                    .unwrap();
            }
        });
        let r = run_sim(
            backend,
            vec![ProcSource::Channel(rx0), ProcSource::Channel(rx1)],
        );
        f0.join().unwrap();
        f1.join().unwrap();
        assert_eq!(r.total_refs, 20);
        assert_eq!(r.total_instructions, 20 + 60);
    }

    #[test]
    fn contention_visible_in_wall_clock() {
        // Two processors issuing simultaneous misses must take longer than
        // one processor issuing the same misses alone (bus queueing),
        // per-processor.  Address regions are disjoint (1 MB apart) so no
        // page or line is shared between processors.
        let mk = |n: u32, procs: usize| {
            let backend = smp_backend(n);
            let sources: Vec<ProcSource> = (0..procs)
                .map(|p| {
                    ProcSource::from_events(
                        (0..200u64)
                            .map(|i| MemEvent::Read(p as u64 * (1 << 20) + i * 64))
                            .collect(),
                    )
                })
                .collect();
            run_sim(backend, sources)
        };
        let solo = mk(1, 1);
        let duo = mk(2, 2);
        // Per-proc time in the contended run exceeds the solo run.
        assert!(
            duo.proc_cycles[0] > solo.proc_cycles[0],
            "duo {} vs solo {}",
            duo.proc_cycles[0],
            solo.proc_cycles[0]
        );
    }

    #[test]
    fn e_instr_seconds_uses_clock() {
        let backend = smp_backend(1);
        let src = ProcSource::from_events(vec![MemEvent::Compute(100)]);
        let r = run_sim(backend, vec![src]);
        assert!((r.e_instr_seconds - 1.0 / 2e8).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "one event source per")]
    fn source_count_checked() {
        let backend = smp_backend(2);
        let _ = SimSession::new(backend)
            .source(ProcSource::from_events(vec![]))
            .run();
    }

    #[test]
    fn chunk_size_invariance() {
        // Results must not depend on how the event stream is batched:
        // chunk=1 over a channel ≡ chunk=4096 ≡ one in-memory vector.
        let events = |p: u64| -> Vec<MemEvent> {
            (0..500u64)
                .map(|i| match i % 4 {
                    0 => MemEvent::Write(p * (1 << 20) + i * 8),
                    1 => MemEvent::Compute(7),
                    _ => MemEvent::Read(p * (1 << 20) + i * 32),
                })
                .chain([MemEvent::Barrier])
                .chain((0..100u64).map(|i| MemEvent::Read(i * 64)))
                .collect()
        };
        let chunked = |chunk: usize| -> SimReport {
            let mut sources = Vec::new();
            let mut handles = Vec::new();
            for p in 0..2u64 {
                let (tx, rx) = channel::bounded::<Vec<MemEvent>>(4);
                let evs = events(p);
                handles.push(std::thread::spawn(move || {
                    for piece in evs.chunks(chunk) {
                        tx.send(piece.to_vec()).unwrap();
                    }
                    // An empty trailing flush must be invisible.
                    tx.send(Vec::new()).unwrap();
                }));
                sources.push(ProcSource::Channel(rx));
            }
            let r = run_sim(smp_backend(2), sources);
            for h in handles {
                h.join().unwrap();
            }
            r
        };
        let in_memory = run_sim(
            smp_backend(2),
            vec![
                ProcSource::from_events(events(0)),
                ProcSource::from_events(events(1)),
            ],
        );
        assert_eq!(chunked(1), in_memory);
        assert_eq!(chunked(4096), in_memory);
        // A refcount-shared buffer replays identically to an owned one.
        let shared = run_sim(
            smp_backend(2),
            vec![
                ProcSource::shared(events(0).into()),
                ProcSource::shared(events(1).into()),
            ],
        );
        assert_eq!(shared, in_memory);
    }

    #[test]
    fn chunk_size_invariance_with_timeseries_observer() {
        // The observed path (slow loop) must be batching-invariant too:
        // with a TimeSeriesCollector attached, both the report and the
        // emitted windowed series must not depend on chunk size.
        let events = |p: u64| -> Vec<MemEvent> {
            (0..800u64)
                .map(|i| match i % 5 {
                    0 => MemEvent::Write(p * (1 << 21) + i * 16),
                    1 => MemEvent::Compute(3),
                    _ => MemEvent::Read(p * (1 << 21) + i * 64),
                })
                .chain([MemEvent::Barrier])
                .chain((0..200u64).map(|i| MemEvent::Read(i * 128)))
                .collect()
        };
        let observed = |sources: Vec<ProcSource>| {
            let out = SimSession::new(smp_backend(2))
                .with_sources(sources)
                .observe(TimeSeriesCollector::new(1_000))
                .run();
            let series = out
                .observer::<TimeSeriesCollector>()
                .expect("collector attached")
                .series()
                .clone();
            (out.report, series)
        };
        let chunked = |chunk: usize| {
            let mut sources = Vec::new();
            let mut handles = Vec::new();
            for p in 0..2u64 {
                let (tx, rx) = channel::bounded::<Vec<MemEvent>>(4);
                let evs = events(p);
                handles.push(std::thread::spawn(move || {
                    for piece in evs.chunks(chunk) {
                        tx.send(piece.to_vec()).unwrap();
                    }
                }));
                sources.push(ProcSource::Channel(rx));
            }
            let out = observed(sources);
            for h in handles {
                h.join().unwrap();
            }
            out
        };
        let (report, series) = observed(vec![
            ProcSource::from_events(events(0)),
            ProcSource::from_events(events(1)),
        ]);
        assert!(!series.windows.is_empty(), "series should have windows");
        assert_eq!(chunked(1), (report.clone(), series.clone()));
        assert_eq!(chunked(4096), (report, series));
    }

    #[test]
    fn nop_observer_changes_nothing() {
        let mk_sources = || {
            vec![ProcSource::from_events(
                (0..100u64)
                    .map(|i| {
                        if i % 3 == 0 {
                            MemEvent::Write(i * 64)
                        } else {
                            MemEvent::Read(i * 32)
                        }
                    })
                    .collect(),
            )]
        };
        let bare = run_sim(smp_backend(1), mk_sources());
        let observed = SimSession::new(smp_backend(1))
            .with_sources(mk_sources())
            .observe(NopObserver)
            .run();
        assert_eq!(bare, observed.report);
    }

    #[test]
    fn collector_reconciles_with_report() {
        let sources = vec![
            ProcSource::from_events(
                (0..300u64)
                    .map(|i| MemEvent::Read(i * 64))
                    .chain([MemEvent::Barrier, MemEvent::Compute(10)])
                    .collect(),
            ),
            ProcSource::from_events(
                (0..50u64)
                    .map(|i| MemEvent::Write(i * 64))
                    .chain([MemEvent::Barrier, MemEvent::Compute(10)])
                    .collect(),
            ),
        ];
        let out = SimSession::new(smp_backend(2))
            .with_sources(sources)
            .observe(TimeSeriesCollector::new(1000))
            .run();
        let series = out.observer::<TimeSeriesCollector>().unwrap().series();
        let sum = |f: fn(&crate::observe::MetricsWindow) -> u64| -> u64 {
            series.windows.iter().map(f).sum()
        };
        assert_eq!(sum(|w| w.refs), out.report.total_refs);
        assert_eq!(sum(|w| w.l1_hits), out.report.levels.l1_hits);
        assert_eq!(sum(|w| w.local_memory), out.report.levels.local_memory);
        assert_eq!(sum(|w| w.upgrades), out.report.levels.upgrades);
        assert_eq!(sum(|w| w.data_bytes), out.report.traffic.data_bytes);
        assert_eq!(
            sum(|w| w.coherence_bytes),
            out.report.traffic.coherence_bytes
        );
        assert_eq!(
            sum(|w| w.barrier_wait_cycles),
            out.report.barrier_wait_cycles
        );
        assert_eq!(
            sum(|w| w.bus_busy_cycles),
            out.report.bus_busy_cycles.iter().sum::<u64>()
        );
        // Per-proc refs reconcile too.
        let proc_refs: u64 = series.per_proc.iter().map(|p| p.refs).sum();
        assert_eq!(proc_refs, out.report.total_refs);
        assert_eq!(series.totals.wall_cycles, out.report.wall_cycles);
    }

    #[test]
    fn tracer_records_accesses_and_barriers() {
        let sources = vec![
            ProcSource::from_events(vec![
                MemEvent::Read(0),
                MemEvent::Barrier,
                MemEvent::Read(64),
            ]),
            ProcSource::from_events(vec![
                MemEvent::Compute(5),
                MemEvent::Barrier,
                MemEvent::Read(8192),
            ]),
        ];
        let out = SimSession::new(smp_backend(2))
            .with_sources(sources)
            .observe(EventTracer::new(64))
            .run();
        let log = out.observer::<EventTracer>().unwrap().log();
        let accesses = log
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::Access)
            .count();
        let barriers = log
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::Barrier)
            .count();
        assert_eq!(accesses as u64, out.report.total_refs);
        assert_eq!(barriers as u64, out.report.barriers);
        assert_eq!(log.dropped, 0);
        // JSONL round-trips through the parser.
        for line in log.to_jsonl().lines() {
            let _: serde_json::Value = serde_json::from_str(line).unwrap();
        }
    }
}
