//! The intra-scenario parallel engine: simulated processors sharded
//! across host worker threads under deterministic epoch barriers.
//!
//! Selected with [`SimSession::sim_threads`](crate::SimSession::sim_threads)
//! (or `MEMHIER_SIM_THREADS` through the bench runner).  `sim_threads = 0`
//! keeps the classic conservative engine in `engine.rs`; any `n ≥ 1` runs
//! **this** engine, and — crucially — runs the *same algorithm* for every
//! `n`.  The thread count only chooses how the per-processor work of a
//! phase is distributed over host threads; no simulated decision ever
//! reads it.  Reports and observer streams are therefore byte-identical
//! across `sim_threads ∈ {1, 2, 8, …}` (pinned by the `thread_invariance`
//! differential tests in `crates/bench`).
//!
//! # The epoch algorithm
//!
//! Simulated time advances in fixed **epochs** of [`EPOCH_CYCLES`].
//! Within an epoch the engine alternates two phases until every live
//! processor has reached the epoch horizon:
//!
//! * **Phase A (parallel)** — each processor independently replays its
//!   stream: compute events advance its clock, and memory references are
//!   classified against *its own cache only* (a non-mutating probe).
//!   References that resolve entirely locally — any read hit, or a write
//!   hit on a Modified line — are applied on the spot (LRU refresh, clock
//!   advance).  Anything that would touch shared coherence state (a miss,
//!   a Shared/Exclusive write, a barrier) **parks** the processor on that
//!   pending event.  Processors touch disjoint state, so shards run on
//!   worker threads with no locks.
//! * **Phase B (serial)** — all parked coherence events are processed in
//!   `(issue clock, processor)` order through the full backend — the
//!   batched coherence exchange at the epoch barrier.  Processors whose
//!   event resolved below the horizon rejoin Phase A in the next round.
//!
//! Barriers release exactly as in the classic engine: once every
//! unfinished processor is parked at the barrier, clocks align to the
//! latest arrival.
//!
//! # Semantics
//!
//! Phase A's speculation means another processor's invalidation lands at
//! the next round boundary rather than between two hits of a run, so
//! epoch-engine reports can differ (slightly, and deterministically) from
//! the classic engine's.  The pinned contract is **thread-count
//! invariance**, not classic-equivalence; `sim_threads` unset/0 preserves
//! the classic results bit-for-bit.
//!
//! Channel sources are fully drained into memory up front (one drainer
//! thread per channel, so producers' real barriers can't deadlock against
//! a serial drain) — batching is invisible here by construction.

use crate::backend::ClusterBackend;
use crate::cache::{LineState, SetAssocCache};
use crate::engine::{ProcSource, SessionOutput};
use crate::event::MemEvent;
use crate::observe::{AccessObservation, BarrierObservation, ServiceLevel, SimObserver};
use crate::report::{LevelCounts, SimReport};
use std::sync::{Arc, Condvar, Mutex};

/// Epoch width in simulated cycles.  A fixed constant: results must not
/// depend on the host, only on the stream and the backend.
pub const EPOCH_CYCLES: u64 = 8192;

/// One L1 hit applied speculatively in Phase A, recorded (observer runs
/// only) so the serial phase can emit its observation in deterministic
/// order.
#[derive(Clone, Copy)]
struct HitRec {
    clock: u64,
    addr: u64,
    write: bool,
}

/// Per-processor replay state for the epoch engine.  The event stream is
/// fully materialized, so Phase A is pure slice-cursor work.
struct EpochProc {
    events: Arc<[MemEvent]>,
    pos: usize,
    clock: u64,
    instructions: u64,
    refs: u64,
    finished: bool,
    at_barrier: bool,
    /// Coherence event deferred to Phase B: `(addr, write)` issued at
    /// `clock`.
    pending: Option<(u64, bool)>,
    /// L1 hits applied this round (fast path — just a count).
    hits: u64,
    /// L1 hits applied this round (observer path — full records).
    hit_records: Vec<HitRec>,
}

impl EpochProc {
    fn new(events: Arc<[MemEvent]>) -> Self {
        EpochProc {
            events,
            pos: 0,
            clock: 0,
            instructions: 0,
            refs: 0,
            finished: false,
            at_barrier: false,
            pending: None,
            hits: 0,
            hit_records: Vec::new(),
        }
    }

    /// Runnable in Phase A of the current round.
    #[inline]
    fn runnable(&self, horizon: u64) -> bool {
        !self.finished && !self.at_barrier && self.pending.is_none() && self.clock < horizon
    }
}

/// Phase A for one processor: replay until the horizon, a deferred
/// coherence event, a barrier, or stream end.  Touches only this
/// processor's state and cache.
fn advance_proc(
    p: &mut EpochProc,
    cache: &mut SetAssocCache,
    horizon: u64,
    hit_lat: u64,
    observing: bool,
) {
    let events = p.events.clone();
    let events = &events[..];
    while p.clock < horizon {
        let Some(&e) = events.get(p.pos) else {
            p.finished = true;
            return;
        };
        match e {
            MemEvent::Read(a) | MemEvent::Write(a) => {
                let write = matches!(e, MemEvent::Write(_));
                // Classify with a non-mutating probe: `lookup` refreshes
                // LRU even on a miss, and a deferred event must reach the
                // backend's own `lookup` with the cache untouched.
                let local = match cache.probe(a) {
                    Some(_) if !write => true,
                    Some(LineState::Modified) => true,
                    _ => false,
                };
                if !local {
                    p.pending = Some((a, write));
                    p.pos += 1;
                    return;
                }
                cache.lookup(a);
                if observing {
                    p.hit_records.push(HitRec {
                        clock: p.clock,
                        addr: a,
                        write,
                    });
                } else {
                    p.hits += 1;
                }
                p.pos += 1;
                p.clock += 1 + hit_lat;
                p.instructions += 1;
                p.refs += 1;
            }
            MemEvent::Compute(k) => {
                p.pos += 1;
                p.clock += k as u64;
                p.instructions += k as u64;
            }
            MemEvent::Barrier => {
                p.pos += 1;
                p.at_barrier = true;
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker pool: persistent threads, condvar-blocked round handoff
// ---------------------------------------------------------------------------

/// Round release state, updated by the main thread under
/// [`RoundCtl::release`].
struct Release {
    /// Bumped by the main thread to release a Phase A round.
    round: u64,
    /// Horizon for the current round.
    horizon: u64,
    /// Set (with a final broadcast) to shut workers down.
    stop: bool,
}

/// Shared round-control block.  Raw pointers because the processor and
/// cache arrays live on the engine's stack for the whole run; the round
/// protocol guarantees workers only dereference them between a round
/// release and their own completion signal, while the main thread is
/// blocked waiting — so every access window is exclusive per shard.
///
/// Synchronization deliberately *blocks* rather than spins: idle workers
/// sleep on a condvar through the serial Phase B, so on hosts with fewer
/// cores than `sim_threads` (including single-core CI runners) they
/// never steal cycles from the main thread's work.
struct RoundCtl {
    /// Round release state; workers sleep on [`Self::released`].
    release: Mutex<Release>,
    released: Condvar,
    /// Count of workers finished with the current round; the main thread
    /// sleeps on [`Self::all_done`].
    done: Mutex<u64>,
    all_done: Condvar,
    /// `*mut EpochProc` of the processor array.
    procs: usize,
    /// `*mut SetAssocCache` of the per-processor cache array.
    caches: usize,
    /// Fixed disjoint `[start, end)` index range per shard; shard 0 is
    /// run by the main thread, shard `w + 1` by worker `w`.
    shards: Vec<(usize, usize)>,
    hit_lat: u64,
    observing: bool,
}

// SAFETY: the raw pointers are only dereferenced under the round protocol
// described on `RoundCtl`, which hands each shard's slice to exactly one
// thread at a time.
unsafe impl Send for RoundCtl {}
unsafe impl Sync for RoundCtl {}

impl RoundCtl {
    /// Run Phase A for one shard.
    ///
    /// # Safety
    ///
    /// Caller must hold the round protocol's exclusivity for `shard`:
    /// either it is the main thread between releasing a round and waiting
    /// for workers (shard 0), or a worker between observing the round
    /// bump and signalling `done`.
    unsafe fn run_shard(&self, shard: usize, horizon: u64) {
        let (start, end) = self.shards[shard];
        let procs = self.procs as *mut EpochProc;
        let caches = self.caches as *mut SetAssocCache;
        for i in start..end {
            let p = &mut *procs.add(i);
            if p.runnable(horizon) {
                advance_proc(
                    p,
                    &mut *caches.add(i),
                    horizon,
                    self.hit_lat,
                    self.observing,
                );
            }
        }
    }
}

/// The persistent worker pool.  Dropping it (including during a panic
/// unwind out of Phase B) stops and joins every worker before the arrays
/// the control block points into go away.
struct WorkerPool {
    ctl: Arc<RoundCtl>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(ctl: Arc<RoundCtl>) -> Self {
        let workers = ctl.shards.len() - 1;
        let handles = (0..workers)
            .map(|w| {
                let ctl = Arc::clone(&ctl);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        // Sleep until the next round (or shutdown).
                        let horizon = {
                            let mut g = ctl.release.lock().expect("release lock");
                            loop {
                                if g.stop {
                                    return;
                                }
                                if g.round != seen {
                                    seen = g.round;
                                    break g.horizon;
                                }
                                g = ctl.released.wait(g).expect("release wait");
                            }
                        };
                        // SAFETY: round protocol — the main thread bumped
                        // `round` and is now blocked on `done`, so this
                        // worker has exclusive access to shard w + 1.
                        unsafe { ctl.run_shard(w + 1, horizon) };
                        let mut d = ctl.done.lock().expect("done lock");
                        *d += 1;
                        if *d == workers as u64 {
                            ctl.all_done.notify_one();
                        }
                    }
                })
            })
            .collect();
        WorkerPool { ctl, handles }
    }

    /// Release one Phase A round and run the main thread's shard while the
    /// workers run theirs; returns once every shard is done.
    fn run_round(&self, horizon: u64) {
        let workers = (self.ctl.shards.len() - 1) as u64;
        if workers > 0 {
            let mut g = self.ctl.release.lock().expect("release lock");
            g.round += 1;
            g.horizon = horizon;
            drop(g);
            self.ctl.released.notify_all();
        }
        // SAFETY: round protocol — shard 0 belongs to the main thread for
        // the duration of the round.
        unsafe { self.ctl.run_shard(0, horizon) };
        if workers > 0 {
            let mut d = self.ctl.done.lock().expect("done lock");
            while *d < workers {
                d = self.ctl.all_done.wait(d).expect("done wait");
            }
            *d = 0;
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Ok(mut g) = self.ctl.release.lock() {
            g.stop = true;
        }
        self.ctl.released.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Source materialization
// ---------------------------------------------------------------------------

/// Drain every source into a flat trace.  Channels get one drainer thread
/// each: consuming them serially could deadlock against producers that
/// block on *real* barriers while a sibling's bounded channel is full.
fn materialize(sources: Vec<ProcSource>) -> Vec<Arc<[MemEvent]>> {
    enum Slot {
        Ready(Arc<[MemEvent]>),
        Draining(std::thread::JoinHandle<Vec<MemEvent>>),
    }
    let slots: Vec<Slot> = sources
        .into_iter()
        .map(|s| match s {
            ProcSource::InMemory(v) => Slot::Ready(Arc::from(v)),
            ProcSource::Shared(a) => Slot::Ready(a),
            ProcSource::Channel(rx) => Slot::Draining(std::thread::spawn(move || {
                let mut all = Vec::new();
                while let Ok(batch) = rx.recv() {
                    all.extend_from_slice(&batch);
                }
                all
            })),
        })
        .collect();
    slots
        .into_iter()
        .map(|s| match s {
            Slot::Ready(a) => a,
            Slot::Draining(h) => Arc::from(h.join().expect("source drainer panicked")),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// One entry of the serial phase's merged, `(clock, proc)`-ordered pass.
struct MergedEv {
    clock: u64,
    proc: usize,
    addr: u64,
    write: bool,
    deferred: bool,
}

struct EpochEngine {
    backend: ClusterBackend,
    procs: Vec<EpochProc>,
    observers: Vec<Box<dyn SimObserver>>,
    barriers: u64,
    barrier_wait: u64,
    last_counts: LevelCounts,
    hit_lat: u64,
}

/// Run a session on the epoch engine with `sim_threads` host threads.
pub(crate) fn run_epoch(
    backend: ClusterBackend,
    sources: Vec<ProcSource>,
    observers: Vec<Box<dyn SimObserver>>,
    sim_threads: usize,
) -> SessionOutput {
    assert_eq!(
        sources.len(),
        backend.total_procs(),
        "one event source per simulated processor"
    );
    let procs: Vec<EpochProc> = materialize(sources)
        .into_iter()
        .map(EpochProc::new)
        .collect();
    let hit_lat = backend.hit_latency();
    let mut engine = EpochEngine {
        backend,
        procs,
        observers,
        barriers: 0,
        barrier_wait: 0,
        last_counts: LevelCounts::default(),
        hit_lat,
    };
    engine.run(sim_threads);
    let (report, observers) = engine.finish();
    SessionOutput::from_parts(report, observers)
}

impl EpochEngine {
    fn run(&mut self, sim_threads: usize) {
        let n = self.procs.len();
        if n == 0 {
            return;
        }
        let shard_count = sim_threads.max(1).min(n);
        let mut shards = Vec::with_capacity(shard_count);
        let (base, rem) = (n / shard_count, n % shard_count);
        let mut at = 0usize;
        for s in 0..shard_count {
            let len = base + usize::from(s < rem);
            shards.push((at, at + len));
            at += len;
        }
        let observing = !self.observers.is_empty();
        let ctl = Arc::new(RoundCtl {
            release: Mutex::new(Release {
                round: 0,
                horizon: 0,
                stop: false,
            }),
            released: Condvar::new(),
            done: Mutex::new(0),
            all_done: Condvar::new(),
            procs: self.procs.as_mut_ptr() as usize,
            caches: self.backend.caches_mut().as_mut_ptr() as usize,
            shards,
            hit_lat: self.hit_lat,
            observing,
        });
        let pool = WorkerPool::spawn(ctl);

        loop {
            let Some(base_clock) = self
                .procs
                .iter()
                .filter(|p| !p.finished && !p.at_barrier)
                .map(|p| p.clock)
                .min()
            else {
                // No processor can advance on its own; a pending barrier
                // (possibly completed by a finishing processor) is the
                // only way forward.
                if self.barrier_ready() {
                    self.release_barrier();
                    continue;
                }
                break;
            };
            let horizon = base_clock + EPOCH_CYCLES;
            // Inner rounds: Phase A fan-out, serial Phase B, barrier
            // check — until no live processor remains below the horizon.
            loop {
                if self.procs.iter().any(|p| p.runnable(horizon)) {
                    pool.run_round(horizon);
                }
                self.serial_phase();
                if self.barrier_ready() {
                    self.release_barrier();
                }
                let more = self.procs.iter().any(|p| p.runnable(horizon));
                if !more {
                    break;
                }
            }
        }
        drop(pool);
    }

    /// Phase B plus observation fan-out: apply the round's speculative
    /// hit counts, then process every deferred coherence event through
    /// the full backend in `(issue clock, processor)` order.
    fn serial_phase(&mut self) {
        if self.observers.is_empty() {
            let mut hits = 0u64;
            let mut deferred: Vec<(u64, usize)> = Vec::new();
            for (i, p) in self.procs.iter_mut().enumerate() {
                hits += p.hits;
                p.hits = 0;
                if p.pending.is_some() {
                    deferred.push((p.clock, i));
                }
            }
            self.backend.add_l1_hits(hits);
            deferred.sort_unstable();
            for (clock, i) in deferred {
                let (addr, write) = self.procs[i].pending.take().expect("deferred event");
                let lat = self.backend.access(i, addr, write, clock);
                let p = &mut self.procs[i];
                p.clock = clock + 1 + lat;
                p.instructions += 1;
                p.refs += 1;
            }
            return;
        }
        // Observer path: merge hits and deferred events into one ordered
        // pass so the observation stream is a pure function of the
        // algorithm (per-processor clocks strictly increase between
        // records, so `(clock, proc)` totally orders a round).
        let mut merged: Vec<MergedEv> = Vec::new();
        for (i, p) in self.procs.iter_mut().enumerate() {
            for r in p.hit_records.drain(..) {
                merged.push(MergedEv {
                    clock: r.clock,
                    proc: i,
                    addr: r.addr,
                    write: r.write,
                    deferred: false,
                });
            }
            if let Some((addr, write)) = p.pending {
                merged.push(MergedEv {
                    clock: p.clock,
                    proc: i,
                    addr,
                    write,
                    deferred: true,
                });
            }
        }
        merged.sort_unstable_by_key(|e| (e.clock, e.proc));
        for e in merged {
            if e.deferred {
                self.procs[e.proc].pending = None;
                let lat = self.backend.access(e.proc, e.addr, e.write, e.clock);
                let p = &mut self.procs[e.proc];
                p.clock = e.clock + 1 + lat;
                p.instructions += 1;
                p.refs += 1;
                self.notify_access(e.proc, e.addr, e.write, e.clock, lat);
            } else {
                self.backend.add_l1_hits(1);
                self.notify_access(e.proc, e.addr, e.write, e.clock, self.hit_lat);
            }
        }
    }

    /// Snapshot the backend around the access just completed and fan it
    /// out to every observer (mirrors the classic engine's snapshots).
    fn notify_access(&mut self, proc: usize, addr: u64, write: bool, issue_clock: u64, lat: u64) {
        let counts = self.backend.counts();
        let obs = AccessObservation {
            proc,
            addr,
            write,
            issue_clock,
            complete_clock: issue_clock + 1 + lat,
            mem_cycles: lat,
            level: ServiceLevel::classify(&self.last_counts, &counts),
            paged: counts.disk > self.last_counts.disk,
            upgraded: counts.upgrades > self.last_counts.upgrades,
            counts,
            traffic: self.backend.traffic(),
            bus_busy_cycles: self.backend.total_bus_busy_cycles(),
            network_busy_cycles: self.backend.network_busy_cycles(),
            io_busy_cycles: self.backend.total_io_busy_cycles(),
        };
        self.last_counts = counts;
        for o in &mut self.observers {
            o.on_access(&obs);
        }
    }

    /// Whether every unfinished processor is parked at the barrier.
    fn barrier_ready(&self) -> bool {
        let mut any = false;
        for p in &self.procs {
            if p.finished {
                continue;
            }
            if !p.at_barrier {
                return false;
            }
            any = true;
        }
        any
    }

    /// Release a resolved barrier: align every parked clock to the latest
    /// arrival, exactly as the classic engine does.
    fn release_barrier(&mut self) {
        let max = self
            .procs
            .iter()
            .filter(|p| p.at_barrier)
            .map(|p| p.clock)
            .max()
            .expect("at least one process at the barrier");
        self.barriers += 1;
        let observing = !self.observers.is_empty();
        let mut waits: Vec<(usize, u64)> = Vec::new();
        for (i, p) in self.procs.iter_mut().enumerate() {
            if p.at_barrier {
                self.barrier_wait += max - p.clock;
                if observing {
                    waits.push((i, max - p.clock));
                }
                p.clock = max;
                p.at_barrier = false;
            }
        }
        if observing {
            let obs = BarrierObservation {
                release_clock: max,
                waits: &waits,
            };
            for o in &mut self.observers {
                o.on_barrier(&obs);
            }
        }
    }

    fn finish(mut self) -> (SimReport, Vec<Box<dyn SimObserver>>) {
        let proc_cycles: Vec<u64> = self.procs.iter().map(|p| p.clock).collect();
        let wall = proc_cycles.iter().copied().max().unwrap_or(0);
        let total_instructions: u64 = self.procs.iter().map(|p| p.instructions).sum();
        let total_refs: u64 = self.procs.iter().map(|p| p.refs).sum();
        let e_cycles = if total_instructions == 0 {
            0.0
        } else {
            wall as f64 / total_instructions as f64
        };
        let report = SimReport {
            wall_cycles: wall,
            proc_cycles,
            total_instructions,
            total_refs,
            e_instr_cycles: e_cycles,
            e_instr_seconds: e_cycles / self.backend.clock_hz(),
            levels: self.backend.counts(),
            traffic: self.backend.traffic(),
            barriers: self.barriers,
            barrier_wait_cycles: self.barrier_wait,
            bus_busy_cycles: self.backend.bus_busy_cycles(),
            network_busy_cycles: self.backend.network_busy_cycles(),
            io_busy_cycles: self.backend.io_busy_cycles(),
        };
        for o in &mut self.observers {
            o.on_finish(&report);
        }
        (report, self.observers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimSession;
    use crate::homemap::HomeMap;
    use crate::observe::TimeSeriesCollector;
    use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
    use memhier_core::platform::ClusterSpec;

    fn smp_backend(n: u32) -> ClusterBackend {
        let c = ClusterSpec::single(MachineSpec::new(n, 256, 64, 200.0));
        ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(1, 256))
    }

    fn clump_backend() -> ClusterBackend {
        let c = ClusterSpec::cluster(MachineSpec::new(2, 64, 32, 200.0), 2, NetworkKind::Atm155);
        ClusterBackend::new(&c, LatencyParams::paper(), HomeMap::new(2, 256))
    }

    fn mixed_events(p: u64, refs: u64) -> Vec<MemEvent> {
        (0..refs)
            .map(|i| match i % 4 {
                0 => MemEvent::Write((p * 7 + i) * 72 % (1 << 18)),
                1 => MemEvent::Compute(5),
                _ => MemEvent::Read((p * 13 + i) * 40 % (1 << 18)),
            })
            .chain([MemEvent::Barrier])
            .chain((0..refs / 2).map(|i| MemEvent::Read(i * 64 % (1 << 16))))
            .collect()
    }

    fn run_with(backend: ClusterBackend, procs: u64, threads: usize) -> SimReport {
        let sources = (0..procs)
            .map(|p| ProcSource::from_events(mixed_events(p, 600)))
            .collect();
        SimSession::new(backend)
            .with_sources(sources)
            .sim_threads(threads)
            .run()
            .report
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let smp = run_with(smp_backend(4), 4, 1);
        for t in [2, 3, 8] {
            assert_eq!(run_with(smp_backend(4), 4, t), smp, "smp @ {t} threads");
        }
        let clump = run_with(clump_backend(), 4, 1);
        for t in [2, 8] {
            assert_eq!(
                run_with(clump_backend(), 4, t),
                clump,
                "clump @ {t} threads"
            );
        }
    }

    #[test]
    fn observer_stream_is_thread_invariant() {
        let observed = |threads: usize| {
            let sources = (0..4u64)
                .map(|p| ProcSource::from_events(mixed_events(p, 400)))
                .collect();
            let out = SimSession::new(smp_backend(4))
                .with_sources(sources)
                .sim_threads(threads)
                .observe(TimeSeriesCollector::new(5_000))
                .run();
            let series = out
                .observer::<TimeSeriesCollector>()
                .unwrap()
                .series()
                .clone();
            (out.report, series)
        };
        let one = observed(1);
        assert!(!one.1.windows.is_empty());
        assert_eq!(observed(2), one);
        assert_eq!(observed(8), one);
    }

    #[test]
    fn totals_match_the_classic_engine_on_conflict_free_streams() {
        // With a single processor there is no cross-processor coherence to
        // speculate through, so the epoch engine must agree with the
        // classic engine exactly.
        let events: Vec<MemEvent> = (0..2000u64)
            .map(|i| match i % 3 {
                0 => MemEvent::Write(i * 48 % (1 << 20)),
                1 => MemEvent::Compute(2),
                _ => MemEvent::Read(i * 56 % (1 << 20)),
            })
            .collect();
        let classic = SimSession::new(smp_backend(1))
            .with_sources(vec![ProcSource::from_events(events.clone())])
            .run()
            .report;
        let epoch = SimSession::new(smp_backend(1))
            .with_sources(vec![ProcSource::from_events(events)])
            .sim_threads(4)
            .run()
            .report;
        assert_eq!(classic, epoch);
    }

    #[test]
    fn barrier_aligns_clocks_like_classic() {
        let s0 = vec![
            MemEvent::Compute(1000),
            MemEvent::Barrier,
            MemEvent::Compute(5),
        ];
        let s1 = vec![
            MemEvent::Compute(10),
            MemEvent::Barrier,
            MemEvent::Compute(5),
        ];
        let r = SimSession::new(smp_backend(2))
            .with_sources(vec![
                ProcSource::from_events(s0),
                ProcSource::from_events(s1),
            ])
            .sim_threads(2)
            .run()
            .report;
        assert_eq!(r.wall_cycles, 1005);
        assert_eq!(r.proc_cycles, vec![1005, 1005]);
        assert_eq!(r.barriers, 1);
        assert_eq!(r.barrier_wait_cycles, 990);
    }

    #[test]
    fn channel_sources_are_predrained() {
        use crossbeam::channel;
        let mut sources = Vec::new();
        let mut handles = Vec::new();
        for p in 0..2u64 {
            let (tx, rx) = channel::bounded::<Vec<MemEvent>>(2);
            let evs = mixed_events(p, 300);
            handles.push(std::thread::spawn(move || {
                for piece in evs.chunks(7) {
                    tx.send(piece.to_vec()).unwrap();
                }
                tx.send(Vec::new()).unwrap();
            }));
            sources.push(ProcSource::Channel(rx));
        }
        let chunked = SimSession::new(smp_backend(2))
            .with_sources(sources)
            .sim_threads(2)
            .run()
            .report;
        for h in handles {
            h.join().unwrap();
        }
        let in_memory = SimSession::new(smp_backend(2))
            .with_sources(
                (0..2u64)
                    .map(|p| ProcSource::from_events(mixed_events(p, 300)))
                    .collect(),
            )
            .sim_threads(2)
            .run()
            .report;
        assert_eq!(chunked, in_memory);
    }

    #[test]
    fn epoch_boundary_straddling_stream() {
        // A compute burst that jumps far past several epoch horizons, then
        // more memory work: the epoch loop must re-anchor and finish.
        let events: Vec<MemEvent> = [MemEvent::Compute(100)]
            .into_iter()
            .chain((0..50u64).map(|i| MemEvent::Read(i * 64)))
            .chain([MemEvent::Compute(10 * EPOCH_CYCLES as u32)])
            .chain((0..50u64).map(|i| MemEvent::Write(i * 64)))
            .collect();
        let r = SimSession::new(smp_backend(1))
            .with_sources(vec![ProcSource::from_events(events)])
            .sim_threads(2)
            .run()
            .report;
        assert_eq!(r.total_refs, 100);
        assert!(r.wall_cycles > 10 * EPOCH_CYCLES);
    }
}
