//! The event vocabulary flowing from instrumented workloads to the engine.

/// One event of a logical processor's instruction stream.
///
/// This is the simulator's entire input interface — the moral equivalent of
/// the memory-reference event stream MINT hands its back-ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A load from a byte address.
    Read(u64),
    /// A store to a byte address.
    Write(u64),
    /// `k` non-memory instructions (arithmetic/control), 1 cycle each.
    Compute(u32),
    /// A barrier: the process waits until every process reaches it.
    Barrier,
}

impl MemEvent {
    /// Instructions this event represents.
    pub fn instructions(&self) -> u64 {
        match self {
            MemEvent::Read(_) | MemEvent::Write(_) => 1,
            MemEvent::Compute(k) => *k as u64,
            MemEvent::Barrier => 0,
        }
    }

    /// Whether this is a memory reference.
    pub fn is_mem(&self) -> bool {
        matches!(self, MemEvent::Read(_) | MemEvent::Write(_))
    }

    /// The referenced address, if any.
    pub fn address(&self) -> Option<u64> {
        match self {
            MemEvent::Read(a) | MemEvent::Write(a) => Some(*a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_counts() {
        assert_eq!(MemEvent::Read(0).instructions(), 1);
        assert_eq!(MemEvent::Write(8).instructions(), 1);
        assert_eq!(MemEvent::Compute(17).instructions(), 17);
        assert_eq!(MemEvent::Barrier.instructions(), 0);
    }

    #[test]
    fn classification() {
        assert!(MemEvent::Read(0).is_mem());
        assert!(MemEvent::Write(0).is_mem());
        assert!(!MemEvent::Compute(1).is_mem());
        assert!(!MemEvent::Barrier.is_mem());
        assert_eq!(MemEvent::Read(42).address(), Some(42));
        assert_eq!(MemEvent::Compute(3).address(), None);
    }
}
