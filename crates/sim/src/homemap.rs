//! Home-node assignment for the distributed shared memory.
//!
//! The paper's workloads allocate each process's partition in its own local
//! memory (§5.2), so the home of an address is the owner of the partition
//! containing it.  [`HomeMap`] records `(range → owner)` entries registered
//! at allocation time, with a configurable fallback (block-interleaved) for
//! unregistered addresses.
//!
//! Lookups are on the simulator's miss path, so the map stores its ranges
//! flattened into parallel arrays (`starts` / `ends` / `owners`) — the
//! binary search walks one dense `u64` array instead of striding over
//! 24-byte tuples — and keeps a one-entry hint of the last range that
//! answered: SPMD partitions make consecutive misses land in the same
//! partition far more often than not, turning most lookups into two
//! compares.

use std::cell::Cell;

/// Maps byte addresses to home node ids.
#[derive(Debug, Clone)]
pub struct HomeMap {
    /// Sorted range starts; `starts[i]..ends[i]` is owned by `owners[i]`.
    starts: Vec<u64>,
    /// Exclusive range ends, parallel to `starts`.
    ends: Vec<u64>,
    /// Owning node per range, parallel to `starts`.
    owners: Vec<u32>,
    /// Index of the last range that answered a lookup.
    hint: Cell<usize>,
    /// Number of nodes, for the interleaved fallback.
    nodes: usize,
    /// `log2(block_bytes)` of the interleaved fallback.
    block_shift: u32,
}

impl HomeMap {
    /// New map over `nodes` nodes; unregistered addresses interleave by
    /// `block_bytes` blocks.
    pub fn new(nodes: usize, block_bytes: u64) -> Self {
        assert!(nodes >= 1);
        assert!(block_bytes.is_power_of_two());
        HomeMap {
            starts: Vec::new(),
            ends: Vec::new(),
            owners: Vec::new(),
            hint: Cell::new(0),
            nodes,
            block_shift: block_bytes.trailing_zeros(),
        }
    }

    /// Register `[start, end)` as homed at `node`.  Ranges must not overlap
    /// previously registered ones (checked, panics on overlap).
    pub fn register(&mut self, start: u64, end: u64, node: usize) {
        assert!(start < end, "empty range");
        assert!(node < self.nodes, "node {node} out of {}", self.nodes);
        let pos = self.starts.partition_point(|&s| s < start);
        if pos > 0 {
            assert!(self.ends[pos - 1] <= start, "overlapping home ranges");
        }
        if pos < self.starts.len() {
            assert!(end <= self.starts[pos], "overlapping home ranges");
        }
        self.starts.insert(pos, start);
        self.ends.insert(pos, end);
        self.owners.insert(pos, node as u32);
    }

    /// Like [`HomeMap::register`] but tolerant of overlap with existing
    /// ranges: the new range is clipped to the gaps (earlier registrations
    /// win).  Used when partitions are rounded outward to block boundaries
    /// and may abut or slightly overlap.
    pub fn register_clamped(&mut self, start: u64, end: u64, node: usize) {
        assert!(node < self.nodes);
        if start >= end {
            return;
        }
        // Collect the gaps of [start, end) not covered by existing ranges.
        let mut cursor = start;
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        for i in 0..self.starts.len() {
            let (s, e) = (self.starts[i], self.ends[i]);
            if e <= cursor {
                continue;
            }
            if s >= end {
                break;
            }
            if s > cursor {
                gaps.push((cursor, s.min(end)));
            }
            cursor = cursor.max(e);
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            gaps.push((cursor, end));
        }
        for (s, e) in gaps {
            self.register(s, e, node);
        }
    }

    /// Home node of `addr`.
    #[inline]
    pub fn home(&self, addr: u64) -> usize {
        // Hint first: repeated misses into one partition short-circuit the
        // search entirely.  The hint only steers which compare runs first —
        // the answer is identical either way.
        let h = self.hint.get();
        if let Some(&s) = self.starts.get(h) {
            if addr >= s && addr < self.ends[h] {
                return self.owners[h] as usize;
            }
        }
        let pos = self.starts.partition_point(|&s| s <= addr);
        if pos > 0 {
            let i = pos - 1;
            if addr < self.ends[i] {
                self.hint.set(i);
                return self.owners[i] as usize;
            }
        }
        ((addr >> self.block_shift) as usize) % self.nodes
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_ranges_win() {
        let mut m = HomeMap::new(4, 256);
        m.register(0, 1000, 2);
        m.register(1000, 2000, 3);
        assert_eq!(m.home(0), 2);
        assert_eq!(m.home(999), 2);
        assert_eq!(m.home(1000), 3);
        assert_eq!(m.home(1999), 3);
    }

    #[test]
    fn fallback_interleaves_blocks() {
        let m = HomeMap::new(4, 256);
        assert_eq!(m.home(0), 0);
        assert_eq!(m.home(256), 1);
        assert_eq!(m.home(512), 2);
        assert_eq!(m.home(768), 3);
        assert_eq!(m.home(1024), 0);
        // Within one block, same home.
        assert_eq!(m.home(255), 0);
    }

    #[test]
    fn register_out_of_order() {
        let mut m = HomeMap::new(2, 256);
        m.register(5000, 6000, 1);
        m.register(0, 1000, 0);
        m.register(1000, 5000, 1);
        assert_eq!(m.home(500), 0);
        assert_eq!(m.home(3000), 1);
        assert_eq!(m.home(5500), 1);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn rejects_overlap() {
        let mut m = HomeMap::new(2, 256);
        m.register(0, 1000, 0);
        m.register(500, 1500, 1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_bad_node() {
        let mut m = HomeMap::new(2, 256);
        m.register(0, 10, 5);
    }

    #[test]
    fn register_clamped_clips_overlap() {
        let mut m = HomeMap::new(3, 256);
        m.register(1000, 2000, 0);
        // Overlaps [1000, 2000) on both sides: only the gaps register.
        m.register_clamped(500, 2500, 1);
        assert_eq!(m.home(700), 1);
        assert_eq!(m.home(1500), 0, "earlier registration wins");
        assert_eq!(m.home(2200), 1);
        // Fully covered → no-op.
        m.register_clamped(1200, 1300, 2);
        assert_eq!(m.home(1250), 0);
        // Empty range → no-op.
        m.register_clamped(50, 50, 2);
    }

    #[test]
    fn register_clamped_multiple_gaps() {
        let mut m = HomeMap::new(2, 256);
        m.register(100, 200, 0);
        m.register(300, 400, 0);
        m.register_clamped(0, 500, 1);
        assert_eq!(m.home(50), 1);
        assert_eq!(m.home(150), 0);
        assert_eq!(m.home(250), 1);
        assert_eq!(m.home(350), 0);
        assert_eq!(m.home(450), 1);
    }

    #[test]
    fn single_node_everything_local() {
        let m = HomeMap::new(1, 256);
        for a in [0u64, 1 << 20, 1 << 40] {
            assert_eq!(m.home(a), 0);
        }
    }

    #[test]
    fn hint_never_changes_answers() {
        // Interleave lookups across ranges and the fallback so the hint is
        // repeatedly stale, and check against a hintless fresh map.
        let mut m = HomeMap::new(4, 256);
        m.register(0, 4096, 1);
        m.register(8192, 12_288, 3);
        let fresh = || {
            let mut f = HomeMap::new(4, 256);
            f.register(0, 4096, 1);
            f.register(8192, 12_288, 3);
            f
        };
        let probes = [0u64, 9000, 5000, 100, 13_000, 8191, 8192, 12_287, 12_288];
        for (i, &a) in probes.iter().cycle().take(100).enumerate() {
            let expect = fresh().home(a.wrapping_add((i as u64 % 3) * 64));
            assert_eq!(m.home(a.wrapping_add((i as u64 % 3) * 64)), expect);
        }
    }
}
