//! Home-node assignment for the distributed shared memory.
//!
//! The paper's workloads allocate each process's partition in its own local
//! memory (§5.2), so the home of an address is the owner of the partition
//! containing it.  [`HomeMap`] records `(range → owner)` entries registered
//! at allocation time, with a configurable fallback (block-interleaved) for
//! unregistered addresses.

/// Maps byte addresses to home node ids.
#[derive(Debug, Clone)]
pub struct HomeMap {
    /// Sorted, non-overlapping `(start, end_exclusive, node)` ranges.
    ranges: Vec<(u64, u64, usize)>,
    /// Number of nodes, for the interleaved fallback.
    nodes: usize,
    /// Block size of the interleaved fallback.
    block_bytes: u64,
}

impl HomeMap {
    /// New map over `nodes` nodes; unregistered addresses interleave by
    /// `block_bytes` blocks.
    pub fn new(nodes: usize, block_bytes: u64) -> Self {
        assert!(nodes >= 1);
        assert!(block_bytes.is_power_of_two());
        HomeMap {
            ranges: Vec::new(),
            nodes,
            block_bytes,
        }
    }

    /// Register `[start, end)` as homed at `node`.  Ranges must not overlap
    /// previously registered ones (checked, panics on overlap).
    pub fn register(&mut self, start: u64, end: u64, node: usize) {
        assert!(start < end, "empty range");
        assert!(node < self.nodes, "node {node} out of {}", self.nodes);
        let pos = self.ranges.partition_point(|&(s, _, _)| s < start);
        if pos > 0 {
            assert!(self.ranges[pos - 1].1 <= start, "overlapping home ranges");
        }
        if pos < self.ranges.len() {
            assert!(end <= self.ranges[pos].0, "overlapping home ranges");
        }
        self.ranges.insert(pos, (start, end, node));
    }

    /// Like [`HomeMap::register`] but tolerant of overlap with existing
    /// ranges: the new range is clipped to the gaps (earlier registrations
    /// win).  Used when partitions are rounded outward to block boundaries
    /// and may abut or slightly overlap.
    pub fn register_clamped(&mut self, start: u64, end: u64, node: usize) {
        assert!(node < self.nodes);
        if start >= end {
            return;
        }
        // Collect the gaps of [start, end) not covered by existing ranges.
        let mut cursor = start;
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        for &(s, e, _) in &self.ranges {
            if e <= cursor {
                continue;
            }
            if s >= end {
                break;
            }
            if s > cursor {
                gaps.push((cursor, s.min(end)));
            }
            cursor = cursor.max(e);
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            gaps.push((cursor, end));
        }
        for (s, e) in gaps {
            self.register(s, e, node);
        }
    }

    /// Home node of `addr`.
    pub fn home(&self, addr: u64) -> usize {
        let pos = self.ranges.partition_point(|&(s, _, _)| s <= addr);
        if pos > 0 {
            let (s, e, n) = self.ranges[pos - 1];
            if addr >= s && addr < e {
                return n;
            }
        }
        ((addr / self.block_bytes) as usize) % self.nodes
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_ranges_win() {
        let mut m = HomeMap::new(4, 256);
        m.register(0, 1000, 2);
        m.register(1000, 2000, 3);
        assert_eq!(m.home(0), 2);
        assert_eq!(m.home(999), 2);
        assert_eq!(m.home(1000), 3);
        assert_eq!(m.home(1999), 3);
    }

    #[test]
    fn fallback_interleaves_blocks() {
        let m = HomeMap::new(4, 256);
        assert_eq!(m.home(0), 0);
        assert_eq!(m.home(256), 1);
        assert_eq!(m.home(512), 2);
        assert_eq!(m.home(768), 3);
        assert_eq!(m.home(1024), 0);
        // Within one block, same home.
        assert_eq!(m.home(255), 0);
    }

    #[test]
    fn register_out_of_order() {
        let mut m = HomeMap::new(2, 256);
        m.register(5000, 6000, 1);
        m.register(0, 1000, 0);
        m.register(1000, 5000, 1);
        assert_eq!(m.home(500), 0);
        assert_eq!(m.home(3000), 1);
        assert_eq!(m.home(5500), 1);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn rejects_overlap() {
        let mut m = HomeMap::new(2, 256);
        m.register(0, 1000, 0);
        m.register(500, 1500, 1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_bad_node() {
        let mut m = HomeMap::new(2, 256);
        m.register(0, 10, 5);
    }

    #[test]
    fn register_clamped_clips_overlap() {
        let mut m = HomeMap::new(3, 256);
        m.register(1000, 2000, 0);
        // Overlaps [1000, 2000) on both sides: only the gaps register.
        m.register_clamped(500, 2500, 1);
        assert_eq!(m.home(700), 1);
        assert_eq!(m.home(1500), 0, "earlier registration wins");
        assert_eq!(m.home(2200), 1);
        // Fully covered → no-op.
        m.register_clamped(1200, 1300, 2);
        assert_eq!(m.home(1250), 0);
        // Empty range → no-op.
        m.register_clamped(50, 50, 2);
    }

    #[test]
    fn register_clamped_multiple_gaps() {
        let mut m = HomeMap::new(2, 256);
        m.register(100, 200, 0);
        m.register(300, 400, 0);
        m.register_clamped(0, 500, 1);
        assert_eq!(m.home(50), 1);
        assert_eq!(m.home(150), 0);
        assert_eq!(m.home(250), 1);
        assert_eq!(m.home(350), 0);
        assert_eq!(m.home(450), 1);
    }

    #[test]
    fn single_node_everything_local() {
        let m = HomeMap::new(1, 256);
        for a in [0u64, 1 << 20, 1 << 40] {
            assert_eq!(m.home(a), 0);
        }
    }
}
