//! # memhier-sim
//!
//! Program-driven cluster memory-hierarchy simulator — the reproduction's
//! substitute for the paper's MINT front-end plus five hand-written
//! back-ends (§5.1).
//!
//! Instrumented SPMD workloads (see `memhier-workloads`) emit per-process
//! streams of [`MemEvent`]s; the [`engine`] interleaves the logical
//! processors in simulated-time order and drives a [`backend::ClusterBackend`]
//! that models:
//!
//! * per-processor set-associative LRU **caches** (64-byte lines, 2-way, as
//!   §5.1 specifies for SMPs),
//! * a **snooping write-invalidate protocol** inside each SMP node,
//! * a **directory protocol** (256-byte blocks, states Uncached / Shared /
//!   Exclusive) across nodes, with each node's local memory acting as an
//!   LRU cache of remote blocks,
//! * the **hybrid** combination for clusters of SMPs (directory between
//!   nodes, snooping within),
//! * **bus and switch networks** with explicit queueing for the medium,
//! * **disks** behind an LRU page-residency model.
//!
//! The paper's five platforms are five configurations of the same backend:
//! SMP (`N = 1`), COW over bus/switch (`n = 1`), CLUMP over bus/switch.
//!
//! All latencies are the paper's §5.1 cycle counts, taken from
//! [`memhier_core::machine::LatencyParams`].

pub mod backend;
pub mod cache;
pub mod dirtable;
pub mod engine;
pub mod epoch;
pub mod event;
pub mod homemap;
pub mod observe;
pub mod report;
pub mod util;

pub use backend::{ClusterBackend, ProtocolParams};
pub use dirtable::{DirEntry, DirTable};
pub use engine::{ProcSource, SessionOutput, SimSession};
pub use event::MemEvent;
pub use homemap::HomeMap;
pub use observe::{
    AccessObservation, BarrierObservation, EventTracer, MetricsSeries, MetricsTotals,
    MetricsWindow, NopObserver, ProcBreakdown, ServiceLevel, SimObserver, TimeSeriesCollector,
    TraceEvent, TraceKind, TraceLog,
};
pub use report::SimReport;
