//! Pluggable observability taps for the simulation engine.
//!
//! The engine itself only aggregates end-of-run totals ([`SimReport`]);
//! everything finer-grained — windowed utilization series, per-access
//! traces — is the business of a [`SimObserver`] attached through
//! [`SimSession::observe`](crate::SimSession::observe).  Observers are
//! strictly *taps*: they receive read-only snapshots after each simulated
//! memory access and barrier release and cannot perturb simulated time, so
//! a run with observers attached produces the exact same `SimReport` as a
//! run without (the no-op-observer test in `crates/sim/tests` pins this).
//!
//! Built-in observers:
//!
//! * [`NopObserver`] — does nothing; useful to assert the zero-cost claim.
//! * [`TimeSeriesCollector`] — buckets the run into fixed-width cycle
//!   windows and emits a [`MetricsSeries`]: per-window level service
//!   counts, traffic, stall cycles, barrier waits and bus/network/IO
//!   utilization, plus per-processor totals.  Window sums reconcile
//!   exactly with the final [`LevelCounts`]/[`Traffic`] totals.
//! * [`EventTracer`] — a bounded structured trace of accesses and barrier
//!   releases with JSON Lines export ([`TraceLog::to_jsonl`]).

use crate::report::{LevelCounts, SimReport, Traffic};
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Which memory-hierarchy level serviced a reference (paper §5.3's
/// service categories).  Derived by the engine from the backend's
/// [`LevelCounts`] delta around each access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// L1 cache hit (1 cycle).
    L1,
    /// Intra-SMP cache-to-cache transfer (snoop hit).
    CacheToCache,
    /// Local node memory.
    LocalMemory,
    /// Remote node's memory (clean copy).
    RemoteClean,
    /// Remotely cached dirty data.
    RemoteDirty,
}

impl ServiceLevel {
    /// Stable lowercase name used in metrics/trace JSON.
    pub fn name(self) -> &'static str {
        match self {
            ServiceLevel::L1 => "l1",
            ServiceLevel::CacheToCache => "cache_to_cache",
            ServiceLevel::LocalMemory => "local_memory",
            ServiceLevel::RemoteClean => "remote_clean",
            ServiceLevel::RemoteDirty => "remote_dirty",
        }
    }

    /// Classify one access from the counts delta around it.  Exactly one
    /// of the five service counters increments per access (disk pagings
    /// and upgrades piggyback on the service category).
    pub(crate) fn classify(before: &LevelCounts, after: &LevelCounts) -> ServiceLevel {
        if after.l1_hits > before.l1_hits {
            ServiceLevel::L1
        } else if after.cache_to_cache > before.cache_to_cache {
            ServiceLevel::CacheToCache
        } else if after.remote_dirty > before.remote_dirty {
            ServiceLevel::RemoteDirty
        } else if after.remote_clean > before.remote_clean {
            ServiceLevel::RemoteClean
        } else {
            ServiceLevel::LocalMemory
        }
    }
}

/// Read-only snapshot handed to [`SimObserver::on_access`] after every
/// simulated memory reference.  Cumulative fields (`counts`, `traffic`,
/// busy cycles) reflect the backend state *after* this access.
#[derive(Debug, Clone, Copy)]
pub struct AccessObservation {
    /// Issuing logical processor.
    pub proc: usize,
    /// Byte address accessed.
    pub addr: u64,
    /// Write (vs read).
    pub write: bool,
    /// Simulated clock when the access was issued.
    pub issue_clock: u64,
    /// Processor clock after the access (issue + 1 instruction cycle +
    /// memory latency).
    pub complete_clock: u64,
    /// Memory latency in cycles (includes the 1-cycle cache access, not
    /// the 1-cycle instruction execution).
    pub mem_cycles: u64,
    /// Hierarchy level that serviced the reference.
    pub level: ServiceLevel,
    /// Whether this access triggered a disk page-in.
    pub paged: bool,
    /// Whether this write needed a Shared→Modified upgrade round.
    pub upgraded: bool,
    /// Cumulative level service counts after this access.
    pub counts: LevelCounts,
    /// Cumulative shared-media traffic after this access.
    pub traffic: Traffic,
    /// Cumulative memory-bus busy cycles, summed over nodes.
    pub bus_busy_cycles: u64,
    /// Cumulative cluster-network busy cycles.
    pub network_busy_cycles: u64,
    /// Cumulative I/O-bus busy cycles, summed over nodes.
    pub io_busy_cycles: u64,
}

/// Snapshot handed to [`SimObserver::on_barrier`] when a barrier releases.
#[derive(Debug)]
pub struct BarrierObservation<'a> {
    /// Clock all parked processors were aligned to.
    pub release_clock: u64,
    /// `(processor, cycles waited)` for every released processor.
    pub waits: &'a [(usize, u64)],
}

/// A read-only tap on the simulation.  All hooks default to no-ops, so an
/// implementor only overrides what it needs.  `Any + Send` lets session
/// outputs downcast observers back to their concrete type and lets boxed
/// observers cross worker-pool thread boundaries.
pub trait SimObserver: Any + Send {
    /// Called after every simulated memory reference.
    fn on_access(&mut self, _obs: &AccessObservation) {}
    /// Called after every barrier release.
    fn on_barrier(&mut self, _obs: &BarrierObservation<'_>) {}
    /// Called once when the run completes, with the final report.
    fn on_finish(&mut self, _report: &SimReport) {}
    /// Upcast for downcasting out of [`SessionOutput`](crate::SessionOutput).
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Consuming upcast, so
    /// [`SessionOutput::take_observer`](crate::SessionOutput::take_observer)
    /// can hand the observer back by value (e.g. to finalize a file it
    /// owns).  Implementations are always `fn into_any(self: Box<Self>)
    /// -> Box<dyn Any> { self }`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The zero-cost default: observes nothing.  Attaching it must not change
/// any simulated cycle count.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopObserver;

impl SimObserver for NopObserver {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// Windowed time-series collector
// ---------------------------------------------------------------------------

/// One fixed-width window of the [`MetricsSeries`].  Count fields are
/// deltas attributed to the window containing the access's *issue* clock
/// (a long miss contributes wholly to the window it was issued in).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsWindow {
    /// Window index (`start_cycle / window_cycles`).
    pub index: u64,
    /// First cycle of the window (inclusive).
    pub start_cycle: u64,
    /// End cycle of the window (exclusive).
    pub end_cycle: u64,
    /// Memory references issued in this window.
    pub refs: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// Cache-to-cache transfers.
    pub cache_to_cache: u64,
    /// Local-memory services.
    pub local_memory: u64,
    /// Remote fetches served clean.
    pub remote_clean: u64,
    /// Remote fetches served dirty.
    pub remote_dirty: u64,
    /// Disk page-ins.
    pub disk: u64,
    /// Write upgrades.
    pub upgrades: u64,
    /// Demand data bytes moved.
    pub data_bytes: u64,
    /// Coherence-protocol bytes moved.
    pub coherence_bytes: u64,
    /// Memory-latency cycles summed over references issued here.
    pub stall_cycles: u64,
    /// Barrier-wait cycles attributed to releases in this window.
    pub barrier_wait_cycles: u64,
    /// Memory-bus busy cycles accrued (summed over nodes).
    pub bus_busy_cycles: u64,
    /// Cluster-network busy cycles accrued.
    pub network_busy_cycles: u64,
    /// I/O-bus busy cycles accrued (summed over nodes).
    pub io_busy_cycles: u64,
    /// `bus_busy_cycles / window span` (can exceed 1.0: busy cycles are
    /// summed over all node buses).
    pub bus_utilization: f64,
    /// `network_busy_cycles / window span`.
    pub network_utilization: f64,
    /// `io_busy_cycles / window span` (summed over node I/O buses).
    pub io_utilization: f64,
    /// L1 hit rate among references issued in this window.
    pub l1_hit_rate: f64,
}

/// Per-processor totals over the whole run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcBreakdown {
    /// Logical processor id.
    pub proc: u64,
    /// Memory references issued.
    pub refs: u64,
    /// Memory-latency cycles (stall) accumulated.
    pub mem_stall_cycles: u64,
    /// Cycles spent parked at barriers.
    pub barrier_wait_cycles: u64,
}

/// Run-level totals mirrored from the final [`SimReport`]; window sums
/// reconcile with these exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsTotals {
    /// Simulated wall clock, cycles.
    pub wall_cycles: u64,
    /// Final level service counts.
    pub levels: LevelCounts,
    /// Final traffic breakdown.
    pub traffic: Traffic,
    /// Final memory-bus busy cycles, summed over nodes.
    pub bus_busy_cycles: u64,
    /// Final network busy cycles.
    pub network_busy_cycles: u64,
    /// Final I/O-bus busy cycles, summed over nodes.
    pub io_busy_cycles: u64,
    /// Barriers executed.
    pub barriers: u64,
    /// Total barrier-wait cycles.
    pub barrier_wait_cycles: u64,
}

/// The serializable output of a [`TimeSeriesCollector`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSeries {
    /// Window width, cycles.
    pub window_cycles: u64,
    /// Dense window list from cycle 0 through the last active window.
    pub windows: Vec<MetricsWindow>,
    /// Per-processor run totals.
    pub per_proc: Vec<ProcBreakdown>,
    /// Run totals (equal to the printed `SimReport` aggregates).
    pub totals: MetricsTotals,
}

/// Buckets the run into fixed-width cycle windows.  Attach via
/// [`SimSession::observe`](crate::SimSession::observe); after the run,
/// pull the finished series with [`TimeSeriesCollector::series`] (or
/// downcast out of the session output).
#[derive(Debug)]
pub struct TimeSeriesCollector {
    window_cycles: u64,
    windows: Vec<MetricsWindow>,
    per_proc: Vec<ProcBreakdown>,
    last_counts: LevelCounts,
    last_traffic: Traffic,
    last_bus: u64,
    last_net: u64,
    last_io: u64,
    finished: Option<MetricsSeries>,
}

impl TimeSeriesCollector {
    /// Collector with the given window width in cycles (minimum 1).
    pub fn new(window_cycles: u64) -> Self {
        TimeSeriesCollector {
            window_cycles: window_cycles.max(1),
            windows: Vec::new(),
            per_proc: Vec::new(),
            last_counts: LevelCounts::default(),
            last_traffic: Traffic::default(),
            last_bus: 0,
            last_net: 0,
            last_io: 0,
            finished: None,
        }
    }

    fn window_mut(&mut self, clock: u64) -> &mut MetricsWindow {
        let idx = (clock / self.window_cycles) as usize;
        while self.windows.len() <= idx {
            let i = self.windows.len() as u64;
            self.windows.push(MetricsWindow {
                index: i,
                start_cycle: i * self.window_cycles,
                end_cycle: (i + 1) * self.window_cycles,
                ..MetricsWindow::default()
            });
        }
        &mut self.windows[idx]
    }

    fn proc_mut(&mut self, proc: usize) -> &mut ProcBreakdown {
        while self.per_proc.len() <= proc {
            let p = self.per_proc.len() as u64;
            self.per_proc.push(ProcBreakdown {
                proc: p,
                ..ProcBreakdown::default()
            });
        }
        &mut self.per_proc[proc]
    }

    /// The finished series.  Only available after the session ran
    /// (`on_finish` fired); panics otherwise.
    pub fn series(&self) -> &MetricsSeries {
        self.finished
            .as_ref()
            .expect("TimeSeriesCollector::series before the run finished")
    }

    /// Consume the collector, yielding the finished series.
    pub fn into_series(self) -> MetricsSeries {
        self.finished
            .expect("TimeSeriesCollector::into_series before the run finished")
    }
}

impl SimObserver for TimeSeriesCollector {
    fn on_access(&mut self, o: &AccessObservation) {
        let dc = LevelCounts {
            l1_hits: o.counts.l1_hits - self.last_counts.l1_hits,
            cache_to_cache: o.counts.cache_to_cache - self.last_counts.cache_to_cache,
            local_memory: o.counts.local_memory - self.last_counts.local_memory,
            remote_clean: o.counts.remote_clean - self.last_counts.remote_clean,
            remote_dirty: o.counts.remote_dirty - self.last_counts.remote_dirty,
            disk: o.counts.disk - self.last_counts.disk,
            upgrades: o.counts.upgrades - self.last_counts.upgrades,
        };
        let d_data = o.traffic.data_bytes - self.last_traffic.data_bytes;
        let d_coh = o.traffic.coherence_bytes - self.last_traffic.coherence_bytes;
        let d_bus = o.bus_busy_cycles - self.last_bus;
        let d_net = o.network_busy_cycles - self.last_net;
        let d_io = o.io_busy_cycles - self.last_io;
        self.last_counts = o.counts;
        self.last_traffic = o.traffic;
        self.last_bus = o.bus_busy_cycles;
        self.last_net = o.network_busy_cycles;
        self.last_io = o.io_busy_cycles;

        let w = self.window_mut(o.issue_clock);
        w.refs += 1;
        w.l1_hits += dc.l1_hits;
        w.cache_to_cache += dc.cache_to_cache;
        w.local_memory += dc.local_memory;
        w.remote_clean += dc.remote_clean;
        w.remote_dirty += dc.remote_dirty;
        w.disk += dc.disk;
        w.upgrades += dc.upgrades;
        w.data_bytes += d_data;
        w.coherence_bytes += d_coh;
        w.stall_cycles += o.mem_cycles;
        w.bus_busy_cycles += d_bus;
        w.network_busy_cycles += d_net;
        w.io_busy_cycles += d_io;

        let p = self.proc_mut(o.proc);
        p.refs += 1;
        p.mem_stall_cycles += o.mem_cycles;
    }

    fn on_barrier(&mut self, o: &BarrierObservation<'_>) {
        let total: u64 = o.waits.iter().map(|&(_, w)| w).sum();
        self.window_mut(o.release_clock).barrier_wait_cycles += total;
        for &(proc, wait) in o.waits {
            self.proc_mut(proc).barrier_wait_cycles += wait;
        }
    }

    fn on_finish(&mut self, report: &SimReport) {
        let totals = MetricsTotals {
            wall_cycles: report.wall_cycles,
            levels: report.levels,
            traffic: report.traffic,
            bus_busy_cycles: report.bus_busy_cycles.iter().sum(),
            network_busy_cycles: report.network_busy_cycles,
            io_busy_cycles: report.io_busy_cycles.iter().sum(),
            barriers: report.barriers,
            barrier_wait_cycles: report.barrier_wait_cycles,
        };
        // Catch-up window: attribute any busy/traffic cycles not seen at
        // the last access (none today — accesses are the only mutators —
        // but this keeps the reconciliation invariant robust).
        if !self.windows.is_empty() {
            let d_bus = totals.bus_busy_cycles - self.last_bus;
            let d_net = totals.network_busy_cycles - self.last_net;
            let d_io = totals.io_busy_cycles - self.last_io;
            let d_data = totals.traffic.data_bytes - self.last_traffic.data_bytes;
            let d_coh = totals.traffic.coherence_bytes - self.last_traffic.coherence_bytes;
            let last = self.windows.last_mut().expect("non-empty");
            last.bus_busy_cycles += d_bus;
            last.network_busy_cycles += d_net;
            last.io_busy_cycles += d_io;
            last.data_bytes += d_data;
            last.coherence_bytes += d_coh;
        }
        let span = self.window_cycles as f64;
        for w in &mut self.windows {
            w.bus_utilization = w.bus_busy_cycles as f64 / span;
            w.network_utilization = w.network_busy_cycles as f64 / span;
            w.io_utilization = w.io_busy_cycles as f64 / span;
            w.l1_hit_rate = if w.refs == 0 {
                0.0
            } else {
                w.l1_hits as f64 / w.refs as f64
            };
        }
        self.finished = Some(MetricsSeries {
            window_cycles: self.window_cycles,
            windows: std::mem::take(&mut self.windows),
            per_proc: std::mem::take(&mut self.per_proc),
            totals,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// Bounded structured event tracer
// ---------------------------------------------------------------------------

/// Kind of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A memory reference.
    Access,
    /// A barrier release.
    Barrier,
}

/// One structured trace record.  Access records carry `proc`/`addr`/
/// `write`/`latency`/`level`; barrier records carry `released`/`max_wait`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Record kind.
    pub kind: TraceKind,
    /// Simulated clock (issue clock for accesses, release clock for
    /// barriers).
    pub clock: u64,
    /// Issuing processor (accesses only).
    pub proc: Option<u64>,
    /// Byte address (accesses only).
    pub addr: Option<u64>,
    /// Write flag (accesses only).
    pub write: Option<bool>,
    /// Memory latency in cycles (accesses only).
    pub latency: Option<u64>,
    /// Servicing hierarchy level (accesses only).
    pub level: Option<ServiceLevel>,
    /// Number of processors released (barriers only).
    pub released: Option<u64>,
    /// Longest wait among released processors (barriers only).
    pub max_wait: Option<u64>,
}

/// The tracer's bounded output: the retained events plus how many were
/// dropped once the capacity filled.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Configured capacity.
    pub capacity: u64,
    /// Retained records, oldest first.
    pub events: Vec<TraceEvent>,
    /// Records dropped after the capacity filled.
    pub dropped: u64,
}

impl TraceLog {
    /// Render as JSON Lines: one compact JSON object per event, newline
    /// terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("trace event serializes"));
            out.push('\n');
        }
        out
    }
}

/// Records up to `capacity` structured events, then counts the overflow
/// (keeping the *first* `capacity` events — the warm-up is where the
/// hierarchy fills, which is usually the interesting part).
#[derive(Debug)]
pub struct EventTracer {
    log: TraceLog,
}

impl EventTracer {
    /// Tracer retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventTracer {
            log: TraceLog {
                capacity: capacity as u64,
                events: Vec::new(),
                dropped: 0,
            },
        }
    }

    fn push(&mut self, e: TraceEvent) {
        if (self.log.events.len() as u64) < self.log.capacity {
            self.log.events.push(e);
        } else {
            self.log.dropped += 1;
        }
    }

    /// The trace accumulated so far.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Consume the tracer, yielding its log.
    pub fn into_log(self) -> TraceLog {
        self.log
    }
}

impl SimObserver for EventTracer {
    fn on_access(&mut self, o: &AccessObservation) {
        self.push(TraceEvent {
            kind: TraceKind::Access,
            clock: o.issue_clock,
            proc: Some(o.proc as u64),
            addr: Some(o.addr),
            write: Some(o.write),
            latency: Some(o.mem_cycles),
            level: Some(o.level),
            released: None,
            max_wait: None,
        });
    }

    fn on_barrier(&mut self, o: &BarrierObservation<'_>) {
        self.push(TraceEvent {
            kind: TraceKind::Barrier,
            clock: o.release_clock,
            proc: None,
            addr: None,
            write: None,
            latency: None,
            level: None,
            released: Some(o.waits.len() as u64),
            max_wait: Some(o.waits.iter().map(|&(_, w)| w).max().unwrap_or(0)),
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_picks_the_incremented_level() {
        let a = LevelCounts::default();
        let mut b = a;
        b.l1_hits = 1;
        assert_eq!(ServiceLevel::classify(&a, &b), ServiceLevel::L1);
        let mut c = b;
        c.remote_dirty = 1;
        c.disk = 1; // piggybacks; level is still remote_dirty
        assert_eq!(ServiceLevel::classify(&b, &c), ServiceLevel::RemoteDirty);
    }

    #[test]
    fn tracer_bounds_and_counts_drops() {
        let mut t = EventTracer::new(2);
        for i in 0..5u64 {
            t.push(TraceEvent {
                kind: TraceKind::Access,
                clock: i,
                proc: Some(0),
                addr: Some(i * 64),
                write: Some(false),
                latency: Some(1),
                level: Some(ServiceLevel::L1),
                released: None,
                max_wait: None,
            });
        }
        assert_eq!(t.log().events.len(), 2);
        assert_eq!(t.log().dropped, 3);
        let jsonl = t.log().to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("kind").is_some());
        }
    }

    #[test]
    fn collector_windows_are_dense() {
        let mut c = TimeSeriesCollector::new(100);
        let obs = AccessObservation {
            proc: 0,
            addr: 64,
            write: false,
            issue_clock: 250,
            complete_clock: 252,
            mem_cycles: 1,
            level: ServiceLevel::L1,
            paged: false,
            upgraded: false,
            counts: LevelCounts {
                l1_hits: 1,
                ..LevelCounts::default()
            },
            traffic: Traffic::default(),
            bus_busy_cycles: 0,
            network_busy_cycles: 0,
            io_busy_cycles: 0,
        };
        c.on_access(&obs);
        assert_eq!(c.windows.len(), 3);
        assert_eq!(c.windows[2].refs, 1);
        assert_eq!(c.windows[0].refs, 0);
        assert_eq!(c.windows[2].start_cycle, 200);
        assert_eq!(c.windows[2].end_cycle, 300);
    }
}
