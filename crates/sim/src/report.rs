//! Simulation outputs: per-level service counts, coherence-traffic
//! breakdown (for the §5.3.1 percentages), and the simulated `E(Instr)`.

use serde::{Deserialize, Serialize};

/// How many references each hierarchy level served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelCounts {
    /// L1 cache hits.
    pub l1_hits: u64,
    /// Intra-SMP cache-to-cache transfers (snoop hits, 15 cycles).
    pub cache_to_cache: u64,
    /// Local-memory services (50 cycles).
    pub local_memory: u64,
    /// Remote fetches served by a remote node's memory (clean).
    pub remote_clean: u64,
    /// Remote fetches served by remotely cached (dirty) data.
    pub remote_dirty: u64,
    /// Disk services (2000 cycles).
    pub disk: u64,
    /// Write upgrades (Shared → Modified invalidation rounds).
    pub upgrades: u64,
}

impl LevelCounts {
    /// Total memory references.
    pub fn total_refs(&self) -> u64 {
        self.l1_hits
            + self.cache_to_cache
            + self.local_memory
            + self.remote_clean
            + self.remote_dirty
        // upgrades and disk piggyback on other categories
    }
}

/// Byte traffic on shared media, split into data vs coherence-protocol
/// traffic (the paper reports coherence at 6.3/4.7/7.2/2.1% of bus traffic
/// for FFT/LU/Radix/EDGE on SMPs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// Demand data transfers (line/block fills, writebacks of victims).
    pub data_bytes: u64,
    /// Coherence messages: invalidations, upgrades, coherence-forced
    /// writebacks and cache-to-cache transfers.
    pub coherence_bytes: u64,
}

impl Traffic {
    /// Coherence share of total traffic, in `[0, 1]`.
    pub fn coherence_fraction(&self) -> f64 {
        let tot = self.data_bytes + self.coherence_bytes;
        if tot == 0 {
            0.0
        } else {
            self.coherence_bytes as f64 / tot as f64
        }
    }
}

/// The engine's result for one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock of the simulated run, in cycles (max over processors).
    pub wall_cycles: u64,
    /// Per-processor final clocks.
    pub proc_cycles: Vec<u64>,
    /// Total instructions executed across all processors.
    pub total_instructions: u64,
    /// Total memory references across all processors.
    pub total_refs: u64,
    /// Simulated average execution time per instruction, in cycles
    /// (`wall_cycles / total_instructions`, the direct counterpart of the
    /// model's `E(Instr)`).
    pub e_instr_cycles: f64,
    /// `E(Instr)` in seconds at `clock_hz`.
    pub e_instr_seconds: f64,
    /// Level service counts.
    pub levels: LevelCounts,
    /// Shared-media traffic breakdown.
    pub traffic: Traffic,
    /// Barriers executed (per process).
    pub barriers: u64,
    /// Total cycles processes spent waiting at barriers.
    pub barrier_wait_cycles: u64,
    /// Busy cycles of each node's memory bus.
    pub bus_busy_cycles: Vec<u64>,
    /// Busy cycles of the cluster network (bus medium, or switch ports
    /// summed).
    pub network_busy_cycles: u64,
    /// Busy cycles of each node's I/O bus (disk).
    pub io_busy_cycles: Vec<u64>,
}

impl SimReport {
    /// Memory-bus utilization of node `i` over the run (busy / wall).
    pub fn bus_utilization(&self, node: usize) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        self.bus_busy_cycles.get(node).copied().unwrap_or(0) as f64 / self.wall_cycles as f64
    }

    /// Cluster-network utilization over the run (for a switch this is the
    /// mean port utilization).
    pub fn network_utilization(&self) -> f64 {
        if self.wall_cycles == 0 {
            return 0.0;
        }
        let ports = self.bus_busy_cycles.len().max(1) as f64;
        // For a bus medium network_busy is one resource; dividing by the
        // node count is only meaningful for switches, so report the raw
        // medium utilization bounded to the node count's ports.
        (self.network_busy_cycles as f64 / self.wall_cycles as f64).min(ports)
    }

    /// Average memory access time per reference, cycles — comparable to the
    /// model's `T` (includes the 1-cycle hit).
    pub fn avg_mem_time(&self) -> f64 {
        if self.total_refs == 0 {
            return 0.0;
        }
        // Memory time = total cycles − compute cycles; compute cycles =
        // instructions − refs (1 cycle each).  Summed over processors.
        let total: u64 = self.proc_cycles.iter().sum();
        let compute = self.total_instructions - self.total_refs;
        (total
            .saturating_sub(compute)
            .saturating_sub(self.barrier_wait_cycles)) as f64
            / self.total_refs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherence_fraction() {
        let t = Traffic {
            data_bytes: 930,
            coherence_bytes: 70,
        };
        assert!((t.coherence_fraction() - 0.07).abs() < 1e-12);
        assert_eq!(Traffic::default().coherence_fraction(), 0.0);
    }

    #[test]
    fn level_totals() {
        let c = LevelCounts {
            l1_hits: 90,
            cache_to_cache: 2,
            local_memory: 5,
            remote_clean: 2,
            remote_dirty: 1,
            disk: 1,
            upgrades: 3,
        };
        assert_eq!(c.total_refs(), 100);
    }

    #[test]
    fn avg_mem_time_accounting() {
        let r = SimReport {
            wall_cycles: 1000,
            proc_cycles: vec![1000],
            total_instructions: 500,
            total_refs: 200,
            e_instr_cycles: 2.0,
            e_instr_seconds: 1e-8,
            levels: LevelCounts::default(),
            traffic: Traffic::default(),
            barriers: 0,
            barrier_wait_cycles: 0,
            bus_busy_cycles: vec![400],
            network_busy_cycles: 0,
            io_busy_cycles: vec![0],
        };
        // 1000 cycles − 300 compute = 700 over 200 refs = 3.5.
        assert!((r.avg_mem_time() - 3.5).abs() < 1e-12);
        assert!((r.bus_utilization(0) - 0.4).abs() < 1e-12);
        assert_eq!(r.bus_utilization(7), 0.0, "missing node is zero");
        assert_eq!(r.network_utilization(), 0.0);
    }
}
