//! Small simulation utilities: time-ordered shared resources, an O(1)
//! LRU set, and a fast hasher for the simulator's integer-keyed maps.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A splitmix64-style mixing hasher for the simulator's integer keys
/// (block numbers, page numbers).  SipHash dominates the miss path's
/// directory and residency lookups; these maps are never iterated, so
/// their bucket order is unobservable and a fast non-DoS-resistant hash
/// is safe — simulation results are bit-identical either way.
#[derive(Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // FNV-style fallback for non-integer keys.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        let mut z = self.0 ^ n ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]-keyed maps.
pub type FastHashBuilder = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastHashBuilder>;

/// A serially-reusable resource (a bus, a switch port, a disk arm) modeled
/// by its `free_at` timestamp.  Acquiring at time `now` for `occupancy`
/// cycles queues FIFO behind earlier acquisitions.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    free_at: u64,
    /// Total busy cycles, for utilization reporting.
    busy: u64,
}

impl Resource {
    /// New idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire at `now` for `occupancy` cycles.  Returns the queueing delay
    /// (cycles spent waiting before service starts).
    pub fn acquire(&mut self, now: u64, occupancy: u64) -> u64 {
        let start = self.free_at.max(now);
        self.free_at = start + occupancy;
        self.busy += occupancy;
        start - now
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Cumulative busy cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }
}

/// Intrusive doubly-linked O(1) LRU set with a capacity, used for a node's
/// local-memory cache of remote blocks and for page residency.
///
/// `insert` returns the evicted key when the set overflows.
#[derive(Debug)]
pub struct LruSet<K: Eq + Hash + Copy> {
    capacity: usize,
    map: FastHashMap<K, usize>,
    /// Slab of nodes: (key, prev, next); usize::MAX = none.
    nodes: Vec<(K, usize, usize)>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
}

const NONE: usize = usize::MAX;

impl<K: Eq + Hash + Copy> LruSet<K> {
    /// New LRU set holding at most `capacity` keys (capacity 0 means the
    /// set rejects everything and `insert` evicts the inserted key's
    /// predecessor immediately — callers should avoid 0).
    pub fn new(capacity: usize) -> Self {
        LruSet {
            capacity: capacity.max(1),
            map: FastHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `k` is resident (does not touch recency).
    pub fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    fn unlink(&mut self, i: usize) {
        let (_, prev, next) = self.nodes[i];
        if prev != NONE {
            self.nodes[prev].2 = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.nodes[next].1 = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].1 = NONE;
        self.nodes[i].2 = self.head;
        if self.head != NONE {
            self.nodes[self.head].1 = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }

    /// Touch `k` (move to most-recent).  Returns whether it was resident.
    pub fn touch(&mut self, k: K) -> bool {
        if let Some(&i) = self.map.get(&k) {
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            true
        } else {
            false
        }
    }

    /// Insert `k` as most-recent.  If it was already resident this is a
    /// touch.  Returns the evicted key if the capacity overflowed.
    pub fn insert(&mut self, k: K) -> Option<K> {
        if self.touch(k) {
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = (k, NONE, NONE);
                i
            }
            None => {
                self.nodes.push((k, NONE, NONE));
                self.nodes.len() - 1
            }
        };
        self.push_front(i);
        self.map.insert(k, i);
        evicted
    }

    /// Remove `k` if resident; returns whether it was.
    pub fn remove(&mut self, k: &K) -> bool {
        if let Some(i) = self.map.remove(k) {
            self.unlink(i);
            self.free.push(i);
            true
        } else {
            false
        }
    }

    /// Evict and return the least-recently-used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.tail == NONE {
            return None;
        }
        let i = self.tail;
        let k = self.nodes[i].0;
        self.unlink(i);
        self.map.remove(&k);
        self.free.push(i);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_no_contention() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(100, 50), 0);
        assert_eq!(r.free_at(), 150);
        assert_eq!(r.acquire(200, 10), 0);
        assert_eq!(r.busy_cycles(), 60);
    }

    #[test]
    fn resource_queues_fifo() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(0, 100), 0);
        // Second request at t=10 waits until t=100.
        assert_eq!(r.acquire(10, 100), 90);
        // Third at t=10 waits until t=200.
        assert_eq!(r.acquire(10, 50), 190);
        assert_eq!(r.free_at(), 250);
    }

    #[test]
    fn lru_basic_insert_touch_evict() {
        let mut l = LruSet::new(3);
        assert_eq!(l.insert(1), None);
        assert_eq!(l.insert(2), None);
        assert_eq!(l.insert(3), None);
        assert_eq!(l.len(), 3);
        // Touch 1, making 2 the LRU.
        assert!(l.touch(1));
        assert_eq!(l.insert(4), Some(2));
        assert!(l.contains(&1));
        assert!(!l.contains(&2));
        assert!(l.contains(&3) && l.contains(&4));
    }

    #[test]
    fn lru_reinsert_is_touch() {
        let mut l = LruSet::new(2);
        l.insert(1);
        l.insert(2);
        assert_eq!(l.insert(1), None); // touch, no eviction
        assert_eq!(l.insert(3), Some(2)); // 2 was LRU
    }

    #[test]
    fn lru_remove_and_reuse_slots() {
        let mut l = LruSet::new(2);
        l.insert(1);
        l.insert(2);
        assert!(l.remove(&1));
        assert!(!l.remove(&1));
        assert_eq!(l.len(), 1);
        l.insert(3);
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn lru_stress_against_reference() {
        // Compare against a simple Vec-based LRU.
        let mut fast = LruSet::new(8);
        let mut slow: Vec<u64> = Vec::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33) % 20;
            // Reference model.
            let evicted_ref = if let Some(p) = slow.iter().position(|&v| v == k) {
                slow.remove(p);
                slow.insert(0, k);
                None
            } else {
                slow.insert(0, k);
                if slow.len() > 8 {
                    slow.pop()
                } else {
                    None
                }
            };
            let evicted = fast.insert(k);
            assert_eq!(evicted, evicted_ref);
            assert_eq!(fast.len(), slow.len());
        }
    }
}
