//! Model-based property tests for the flattened miss-path structures.
//!
//! The tiled open-addressed [`DirTable`] replaced a `HashMap` in the
//! backend's directory hot path, and the struct-of-arrays [`HomeMap`]
//! carries a lookup hint; neither is allowed to *answer* differently
//! than the naive structure it replaced.  These properties drive both
//! against simple reference models with arbitrary address streams and
//! check equivalence **after every event**:
//!
//! * `DirTable` versus `HashMap<u64, DirEntry>` under a directory-style
//!   event stream (read/write/evict per block, plus adversarial raw
//!   insert/remove/get mixes over a small colliding key pool so probes,
//!   tombstones, and growth all trigger);
//! * `HomeMap::register_clamped` + `home()` versus a linear-scan range
//!   list with the same block-interleaved fallback.

use memhier_sim::{DirEntry, DirTable, HomeMap};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// DirTable versus HashMap
// ---------------------------------------------------------------------------

/// One step of a directory-style workload.
#[derive(Debug, Clone, Copy)]
enum DirOp {
    /// A processor read of a block: sharer set grows (or the exclusive
    /// owner's copy is downgraded into a two-sharer set).
    Read,
    /// A processor write of a block: the writer becomes exclusive owner.
    Write,
    /// The block's last cached copy is evicted: entry removed.
    Evict,
    /// Raw overwrite with a shared mask (exercises in-place update).
    RawShared,
}

fn op_strategy() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        Just(DirOp::Read),
        Just(DirOp::Write),
        Just(DirOp::Evict),
        Just(DirOp::RawShared),
    ]
}

/// The map update one directory event turns into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MapAction {
    Insert(u64, DirEntry),
    Remove(u64),
}

/// Plan one directory event from the entry a `get` returned.  Written
/// once over the *current entry*, so the table and the model — each
/// answering from its own state — must plan identical updates or the
/// divergence surfaces right here.
fn plan_event(op: DirOp, block: u64, proc: usize, current: Option<DirEntry>) -> MapAction {
    match op {
        DirOp::Read => {
            let next = match current {
                None => DirEntry::Shared(1 << proc),
                Some(DirEntry::Shared(mask)) => DirEntry::Shared(mask | (1 << proc)),
                Some(DirEntry::Exclusive(owner)) => DirEntry::Shared((1 << owner) | (1 << proc)),
            };
            MapAction::Insert(block, next)
        }
        DirOp::Write => MapAction::Insert(block, DirEntry::Exclusive(proc)),
        DirOp::Evict => MapAction::Remove(block),
        DirOp::RawShared => MapAction::Insert(block, DirEntry::Shared(proc as u64)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A directory-style event stream over a small, colliding block pool
    /// leaves the tiled table and a `HashMap` in agreement after every
    /// single event — same lookups, same lengths, same survivors.
    #[test]
    fn dirtable_matches_hashmap_model(
        events in vec((op_strategy(), 0usize..96, 0usize..32), 1..1200),
        pool_stride in 1u64..5,
    ) {
        // Start tiny so the stream forces several growth rehashes, and
        // stride the pool so keys collide in low slot counts.
        let mut table = DirTable::with_capacity(0);
        let mut model: HashMap<u64, DirEntry> = HashMap::new();
        for (op, block_idx, proc) in events {
            let block = (block_idx as u64) * pool_stride * 64;
            let table_plan = plan_event(op, block, proc, table.get(block));
            let model_plan = plan_event(op, block, proc, model.get(&block).copied());
            prop_assert_eq!(table_plan, model_plan);
            match table_plan {
                MapAction::Insert(k, e) => {
                    table.insert(k, e);
                    model.insert(k, e);
                }
                MapAction::Remove(k) => {
                    let removed = table.remove(k);
                    prop_assert_eq!(removed, model.remove(&k));
                }
            }
            prop_assert_eq!(table.get(block), model.get(&block).copied());
            prop_assert_eq!(table.len(), model.len());
            prop_assert_eq!(table.is_empty(), model.is_empty());
        }
        // Full-state sweep: every block either agrees or is absent from
        // both (covers keys displaced by growth or tombstone reuse).
        for idx in 0..96u64 {
            let block = idx * pool_stride * 64;
            prop_assert_eq!(table.get(block), model.get(&block).copied());
        }
    }

    /// Raw insert/remove/get chaos with arbitrary 64-bit keys: removal
    /// returns what the model says, and absent keys stay absent.
    #[test]
    fn dirtable_remove_matches_model(
        ops in vec((any::<u64>(), 0u8..3, 0usize..61), 1..600),
    ) {
        let mut table = DirTable::with_capacity(4);
        let mut model: HashMap<u64, DirEntry> = HashMap::new();
        for (raw_key, kind, node) in ops {
            // Fold into a modest space so removes actually hit.
            let key = raw_key % 257;
            match kind {
                0 => {
                    let e = DirEntry::Exclusive(node);
                    table.insert(key, e);
                    model.insert(key, e);
                }
                1 => {
                    let e = DirEntry::Shared(1u64 << node);
                    table.insert(key, e);
                    model.insert(key, e);
                }
                _ => {
                    prop_assert_eq!(table.remove(key), model.remove(&key));
                }
            }
            prop_assert_eq!(table.get(key), model.get(&key).copied());
            prop_assert_eq!(table.len(), model.len());
        }
    }
}

// ---------------------------------------------------------------------------
// HomeMap versus a linear-scan reference
// ---------------------------------------------------------------------------

/// The naive model: an unordered range list scanned linearly, with the
/// same block-interleaved fallback the real map documents.
struct RefHomes {
    ranges: Vec<(u64, u64, usize)>,
    nodes: usize,
    block_shift: u32,
}

impl RefHomes {
    /// `register_clamped` semantics: earlier registrations win; only the
    /// uncovered gaps of `[start, end)` are claimed.
    fn register_clamped(&mut self, start: u64, end: u64, node: usize) {
        let mut cuts: Vec<u64> = vec![start, end];
        for &(s, e, _) in &self.ranges {
            for b in [s, e] {
                if b > start && b < end {
                    cuts.push(b);
                }
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        for w in cuts.windows(2) {
            let (s, e) = (w[0], w[1]);
            if s < e && self.owner_of(s).is_none() {
                self.ranges.push((s, e, node));
            }
        }
    }

    fn owner_of(&self, addr: u64) -> Option<usize> {
        self.ranges
            .iter()
            .find(|&&(s, e, _)| addr >= s && addr < e)
            .map(|&(_, _, n)| n)
    }

    fn home(&self, addr: u64) -> usize {
        self.owner_of(addr)
            .unwrap_or(((addr >> self.block_shift) as usize) % self.nodes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary clamped registrations interleaved with lookups: the
    /// flattened, hinted map answers exactly like the linear scan, with
    /// lookups *between* registrations keeping the hint maximally stale.
    #[test]
    fn homemap_matches_linear_reference(
        nodes in 1usize..6,
        regs in vec((0u64..1 << 16, 1u64..1 << 12, 0usize..6), 1..24),
        probes in vec(any::<u64>(), 1..200),
    ) {
        let mut map = HomeMap::new(nodes, 256);
        let mut reference = RefHomes { ranges: Vec::new(), nodes, block_shift: 8 };
        for (i, &(start, len, node)) in regs.iter().enumerate() {
            let node = node % nodes;
            map.register_clamped(start, start + len, node);
            reference.register_clamped(start, start + len, node);
            // Probe mid-build so stale hints and partial coverage are hit.
            for &p in probes.iter().skip(i * 7).take(7) {
                let addr = p % (1 << 17);
                prop_assert_eq!(map.home(addr), reference.home(addr));
            }
        }
        for &p in &probes {
            // Full-range plus boundary probes (range edges are where a
            // partition_point off-by-one would hide).
            let addr = p % (1 << 17);
            prop_assert_eq!(map.home(addr), reference.home(addr));
            prop_assert_eq!(map.nodes(), reference.nodes);
        }
        for &(s, _, _) in &reference.ranges.clone() {
            prop_assert_eq!(map.home(s), reference.home(s));
            if s > 0 {
                prop_assert_eq!(map.home(s - 1), reference.home(s - 1));
            }
        }
    }
}
