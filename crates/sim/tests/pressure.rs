//! Capacity-pressure tests: paths only exercised when memory is scarce —
//! page eviction to disk, remote-cache eviction, cache conflict storms.

use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_sim::backend::{ClusterBackend, ProtocolParams};
use memhier_sim::homemap::HomeMap;

/// A backend with a deliberately tiny memory (pages and remote-cache
/// capacity in the single digits).
fn tiny_memory_backend(nn: u32, net: Option<NetworkKind>) -> ClusterBackend {
    // 2 MB memory => 512 pages at 4 KB; remote cache 4096 blocks.
    let m = MachineSpec::new(1, 256, 2, 200.0);
    let cluster = match net {
        Some(k) => ClusterSpec::cluster(m, nn, k),
        None => ClusterSpec::single(m),
    };
    ClusterBackend::new(
        &cluster,
        LatencyParams::paper(),
        HomeMap::new(nn as usize, 256),
    )
}

#[test]
fn paging_evicts_and_refaults() {
    let mut b = tiny_memory_backend(1, None);
    // Touch far more pages than fit in 2 MB (512 pages): sweep 2048 pages.
    let mut now = 0u64;
    for i in 0..2048u64 {
        let lat = b.access(0, i * 4096, false, now);
        now += lat;
    }
    assert_eq!(b.counts().disk, 2048, "every first touch pages in");
    // Re-sweep: everything was evicted by LRU, so it all faults again.
    for i in 0..2048u64 {
        let lat = b.access(0, i * 4096 + 64, false, now);
        now += lat;
    }
    assert_eq!(b.counts().disk, 4096, "LRU sweep refaults every page");
}

#[test]
fn resident_working_set_stops_paging() {
    let mut b = tiny_memory_backend(1, None);
    let mut now = 0u64;
    // 64 pages fit comfortably; loop over them repeatedly.
    for round in 0..4u64 {
        for i in 0..64u64 {
            let lat = b.access(0, i * 4096 + round * 64, false, now);
            now += lat;
        }
    }
    assert_eq!(b.counts().disk, 64, "only cold faults for a resident set");
}

#[test]
fn remote_cache_eviction_causes_refetch() {
    // Shrink the remote-block cache to 4 blocks via custom protocol params
    // on a tiny-memory node, then stream more remote blocks than fit.
    let m = MachineSpec::new(1, 256, 2, 200.0);
    let cluster = ClusterSpec::cluster(m, 2, NetworkKind::Atm155);
    // block_bytes * capacity relation: capacity = mem/2/block = 4 blocks
    // when block_bytes = 256 KB... instead use a huge block size so the
    // LRU capacity formula yields 4.
    let params = ProtocolParams {
        block_bytes: 262_144,
        ..ProtocolParams::default()
    };
    let mut b = ClusterBackend::with_params(
        &cluster,
        LatencyParams::paper(),
        HomeMap::new(2, 262_144),
        params,
    );
    let mut now = 0u64;
    // Node 0 touches 8 distinct remote blocks homed at node 1
    // (interleaved homes: odd blocks -> node 1).
    let remote_blocks: Vec<u64> = (0..16u64).filter(|b| b % 2 == 1).collect();
    for &blk in &remote_blocks {
        let lat = b.access(0, blk * 262_144, false, now);
        now += lat;
    }
    let first_pass = b.counts().remote_clean;
    assert_eq!(first_pass, 8, "all remote first touches fetch");
    // Second pass: capacity 4 < 8, LRU evicted the early blocks — at
    // least the first half must refetch (touch a different line of each
    // block so the L1 doesn't shortcut).
    for &blk in &remote_blocks {
        let lat = b.access(0, blk * 262_144 + 4096, false, now);
        now += lat;
    }
    assert!(
        b.counts().remote_clean > first_pass,
        "evicted remote blocks must refetch: {:?}",
        b.counts()
    );
}

#[test]
fn conflict_misses_in_two_way_cache() {
    // Three lines mapping to the same set thrash a 2-way cache forever.
    let mut b = tiny_memory_backend(1, None);
    let mut now = 0u64;
    // 256 KB, 2-way, 64-B lines => 2048 sets; stride = 2048*64 = 128 KB.
    let stride = 128 * 1024u64;
    for _ in 0..100 {
        for k in 0..3u64 {
            let lat = b.access(0, k * stride, false, now);
            now += lat;
        }
    }
    let c = b.counts();
    // Nearly every access misses (300 accesses, at most a handful of hits).
    assert!(
        c.l1_hits < 10,
        "conflict thrash expected, got {} hits",
        c.l1_hits
    );
}

#[test]
fn two_way_associativity_saves_two_lines() {
    let mut b = tiny_memory_backend(1, None);
    let mut now = 0u64;
    let stride = 128 * 1024u64;
    for _ in 0..100 {
        for k in 0..2u64 {
            let lat = b.access(0, k * stride, false, now);
            now += lat;
        }
    }
    let c = b.counts();
    // Two conflicting lines fit in a 2-way set: everything after the two
    // cold misses hits.
    assert_eq!(c.l1_hits, 198, "{c:?}");
}

#[test]
fn dirty_remote_eviction_writes_back() {
    // Node 0 WRITES remote blocks (Exclusive ownership), then streams
    // enough further remote blocks to evict the dirty ones: each eviction
    // must put the data back at the home (subsequent reads by the home are
    // local, not remote-dirty).
    let m = MachineSpec::new(1, 256, 2, 200.0);
    let cluster = ClusterSpec::cluster(m, 2, NetworkKind::Atm155);
    let params = ProtocolParams {
        block_bytes: 262_144,
        ..ProtocolParams::default()
    };
    let mut b = ClusterBackend::with_params(
        &cluster,
        LatencyParams::paper(),
        HomeMap::new(2, 262_144),
        params,
    );
    let mut now = 0u64;
    // Write remote block 1 (homed at node 1): node 0 becomes dirty owner.
    let lat = b.access(0, 262_144, true, now);
    now += lat;
    // Stream 8 more remote blocks (capacity 4) to evict block 1.
    for blk in [3u64, 5, 7, 9, 11, 13, 15, 17] {
        let lat = b.access(0, blk * 262_144, false, now);
        now += lat;
    }
    // Node 1 reads its own block 1: after the writeback the data is home
    // and clean, so this must be a LOCAL access, not a remote-dirty fetch.
    // (Read within the block's first page — the writeback marks that page
    // resident; the huge test block spans many pages.)
    let before_dirty = b.counts().remote_dirty;
    let lat = b.access(1, 262_144 + 64, false, now);
    assert_eq!(
        b.counts().remote_dirty,
        before_dirty,
        "no dirty fetch after writeback"
    );
    assert_eq!(lat, 1 + 50, "home reads its written-back data locally");
}
