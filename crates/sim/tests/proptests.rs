//! Property-based tests of the simulator substrate.

use memhier_core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier_core::platform::ClusterSpec;
use memhier_sim::backend::ClusterBackend;
use memhier_sim::cache::{LineState, SetAssocCache};
use memhier_sim::engine::{ProcSource, SimSession};
use memhier_sim::event::MemEvent;
use memhier_sim::homemap::HomeMap;
use memhier_sim::util::{LruSet, Resource};
use proptest::prelude::*;

/// Reference model of a fully-associative LRU cache in block units.
struct RefLru {
    cap: usize,
    stack: Vec<u64>,
}

impl RefLru {
    fn access(&mut self, block: u64) -> bool {
        if let Some(p) = self.stack.iter().position(|&b| b == block) {
            self.stack.remove(p);
            self.stack.insert(0, block);
            true
        } else {
            self.stack.insert(0, block);
            self.stack.truncate(self.cap);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn direct_mapped_one_set_cache_is_lru(
        trace in proptest::collection::vec(0u64..64, 1..500),
    ) {
        // A cache with a single set (ways == total lines) must behave as a
        // fully-associative LRU — compare against the reference stack.
        let ways = 8;
        let mut cache = SetAssocCache::new(64 * ways as u64, ways, 64);
        let mut reference = RefLru { cap: ways, stack: Vec::new() };
        for &b in &trace {
            let addr = b * 64;
            let hit = cache.lookup(addr).is_some();
            if !hit {
                cache.insert(addr, LineState::Shared);
            }
            prop_assert_eq!(hit, reference.access(b), "block {}", b);
        }
    }

    #[test]
    fn cache_never_exceeds_capacity(
        trace in proptest::collection::vec(0u64..10_000, 1..2000),
    ) {
        let mut cache = SetAssocCache::new(4096, 2, 64);
        let mut resident = std::collections::HashSet::new();
        for &b in &trace {
            let addr = b * 64;
            if cache.lookup(addr).is_none() {
                if let Some(ev) = cache.insert(addr, LineState::Shared) {
                    resident.remove(&ev.addr);
                }
                resident.insert(addr);
            }
            prop_assert!(resident.len() <= 64, "over capacity");
        }
    }

    #[test]
    fn lru_set_size_bounded(
        keys in proptest::collection::vec(0u64..100, 1..1000),
        cap in 1usize..20,
    ) {
        let mut l = LruSet::new(cap);
        for &k in &keys {
            l.insert(k);
            prop_assert!(l.len() <= cap);
        }
    }

    #[test]
    fn resource_waits_are_work_conserving(
        reqs in proptest::collection::vec((0u64..1000, 1u64..100), 1..100),
    ) {
        // Sorted arrivals through a Resource: total busy equals the sum of
        // occupancies, and service never starts before arrival.
        let mut sorted = reqs.clone();
        sorted.sort();
        let mut r = Resource::new();
        let mut expected_busy = 0;
        for &(now, occ) in &sorted {
            let wait = r.acquire(now, occ);
            prop_assert!(r.free_at() >= now + occ);
            prop_assert!(wait <= r.busy_cycles(), "wait bounded by backlog");
            expected_busy += occ;
        }
        prop_assert_eq!(r.busy_cycles(), expected_busy);
    }

    #[test]
    fn backend_latency_at_least_one(
        ops in proptest::collection::vec((0u64..4, 0u64..4096, any::<bool>()), 1..300),
        nn in 1u32..4,
    ) {
        let m = MachineSpec::new(1, 256, 32, 200.0);
        let cluster = if nn == 1 {
            ClusterSpec::single(m)
        } else {
            ClusterSpec::cluster(m, nn, NetworkKind::Ethernet100)
        };
        let mut be = ClusterBackend::new(
            &cluster,
            LatencyParams::paper(),
            HomeMap::new(nn as usize, 256),
        );
        let procs = be.total_procs();
        let mut now = 0;
        let mut refs = 0;
        for &(p, a, w) in &ops {
            let lat = be.access(p as usize % procs, a * 8, w, now);
            prop_assert!(lat >= 1, "latency below the cache-hit cycle");
            now += lat;
            refs += 1;
        }
        prop_assert_eq!(be.counts().total_refs(), refs);
    }

    #[test]
    fn engine_wall_clock_bounds(
        computes in proptest::collection::vec(1u32..100, 1..50),
    ) {
        // Wall clock of a compute-only process equals the instruction sum;
        // with two symmetric processes it still equals the per-process sum.
        let total: u64 = computes.iter().map(|&k| k as u64).sum();
        let cluster = ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0));
        let backend =
            ClusterBackend::new(&cluster, LatencyParams::paper(), HomeMap::new(1, 256));
        let mk = || {
            ProcSource::from_events(
                computes.iter().map(|&k| MemEvent::Compute(k)).collect(),
            )
        };
        let r = SimSession::new(backend)
            .with_sources(vec![mk(), mk()])
            .run()
            .report;
        prop_assert_eq!(r.wall_cycles, total);
        prop_assert_eq!(r.total_instructions, 2 * total);
    }

    #[test]
    fn engine_barrier_alignment_holds(
        pre in proptest::collection::vec(1u32..1000, 2..5),
    ) {
        // Processes with different pre-barrier compute loads end the
        // barrier at the same clock = max of loads.
        let cluster = ClusterSpec::single(MachineSpec::new(4, 256, 64, 200.0));
        let n = pre.len().min(4);
        let cluster = if n == 4 { cluster } else {
            ClusterSpec::single(MachineSpec::new(n as u32, 256, 64, 200.0))
        };
        let backend =
            ClusterBackend::new(&cluster, LatencyParams::paper(), HomeMap::new(1, 256));
        let sources: Vec<ProcSource> = pre
            .iter()
            .take(n)
            .map(|&k| {
                ProcSource::from_events(vec![MemEvent::Compute(k), MemEvent::Barrier])
            })
            .collect();
        let r = SimSession::new(backend).with_sources(sources).run().report;
        let max = pre.iter().take(n).map(|&k| k as u64).max().unwrap();
        prop_assert!(r.proc_cycles.iter().all(|&c| c == max), "{:?}", r.proc_cycles);
    }

    #[test]
    fn home_map_total_function(
        ranges in proptest::collection::vec((0u64..1000u64, 1u64..100, 0usize..4), 0..10),
        probe in 0u64..200_000,
    ) {
        let mut m = HomeMap::new(4, 256);
        for &(start, len, node) in &ranges {
            m.register_clamped(start * 128, start * 128 + len * 128, node);
        }
        let h = m.home(probe);
        prop_assert!(h < 4);
    }
}
