//! Least-squares fitting of the locality parameters `(α, β)` (paper §5.2:
//! "Using the standard least squares techniques, we fit equations (1) and
//! (2) to the data").
//!
//! The model CDF is `P(x) = 1 − (x/β + 1)^−(α−1)`, so
//!
//! ```text
//! ln(1 − P(x)) = −(α−1) · ln(x/β + 1)
//! ```
//!
//! For a fixed `β` the slope `k = α−1` has the closed-form weighted
//! least-squares solution `k = −Σ w·y·z / Σ w·z²` with `z = ln(x/β+1)`,
//! `y = ln(1−P)`.  The outer 1-D search over `ln β` uses golden-section
//! minimization of the residual, which is smooth and unimodal in practice.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a fit could not be produced.  The checked entry point
/// [`fit_locality_checked`] returns these instead of letting degenerate
/// inputs (empty histograms, all-equal distances, anti-locality data)
/// surface as `NaN`/`Inf` parameters downstream.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FitError {
    /// Fewer than 3 usable CDF points survived filtering (empty
    /// histogram, fully-saturated CDF, ...).
    TooFewPoints {
        /// How many usable points there were.
        usable: usize,
    },
    /// An input point was `NaN` or infinite.
    NonFinite {
        /// The offending abscissa.
        x: f64,
        /// The offending cumulative probability.
        p: f64,
    },
    /// The input carries no curvature to fit (what degenerates, why).
    Degenerate(&'static str),
    /// The best fit ran into the `α > 1` bound — the data does not decay
    /// with distance, so the paper's locality model does not apply.
    OutOfRange {
        /// The boundary `α` the search converged to.
        alpha: f64,
        /// The `β` paired with it.
        beta: f64,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewPoints { usable } => write!(
                f,
                "need at least 3 usable CDF points to fit (α, β), got {usable}"
            ),
            FitError::NonFinite { x, p } => {
                write!(f, "non-finite CDF point ({x}, {p})")
            }
            FitError::Degenerate(why) => write!(f, "degenerate input: {why}"),
            FitError::OutOfRange { alpha, beta } => write!(
                f,
                "fit hit the model boundary (α = {alpha}, β = {beta:.3}): \
                 references do not exhibit decaying locality"
            ),
        }
    }
}

impl std::error::Error for FitError {}

/// Result of a locality fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// Fitted shape parameter `α` (> 1).
    pub alpha: f64,
    /// Fitted scale parameter `β` (> 1).
    pub beta: f64,
    /// Coefficient of determination of the log-domain regression (1 =
    /// perfect fit).
    pub r_squared: f64,
    /// Number of CDF points used.
    pub points: usize,
}

/// Residual sum of squares and the best slope for a fixed beta.
fn rss_for_beta(points: &[(f64, f64)], beta: f64) -> (f64, f64) {
    let mut syz = 0.0;
    let mut szz = 0.0;
    for &(x, p) in points {
        let y = (1.0 - p).ln();
        let z = (x / beta + 1.0).ln();
        syz += y * z;
        szz += z * z;
    }
    if szz == 0.0 {
        return (f64::INFINITY, 0.0);
    }
    let k = (-syz / szz).max(1e-9); // slope = α−1 ≥ 0
    let mut rss = 0.0;
    for &(x, p) in points {
        let y = (1.0 - p).ln();
        let z = (x / beta + 1.0).ln();
        let r = y + k * z;
        rss += r * r;
    }
    (rss, k)
}

/// Fit `(α, β)` to empirical CDF points `(x, P(x))`.
///
/// Points with `P ≥ 1` (fully cumulative) or `P ≤ 0` carry no information
/// in the log domain and are dropped.  Returns `None` if fewer than 3
/// usable points remain.
///
/// ```
/// use memhier_trace::fit::fit_locality;
/// // Synthesize a perfect curve with α = 1.3, β = 90 and recover it.
/// let pts: Vec<(f64, f64)> = (1..60)
///     .map(|i| {
///         let x = (i as f64) * 50.0;
///         (x, 1.0 - (x / 90.0 + 1.0f64).powf(-0.3))
///     })
///     .collect();
/// let fit = fit_locality(&pts).unwrap();
/// assert!((fit.alpha - 1.3).abs() < 1e-3);
/// assert!((fit.beta - 90.0).abs() < 0.5);
/// ```
pub fn fit_locality(points: &[(f64, f64)]) -> Option<FitResult> {
    fit_locality_checked(points).ok()
}

/// [`fit_locality`] with typed rejection: degenerate inputs come back as
/// a [`FitError`] describing *why* no `(α, β)` exists instead of a bare
/// `None` (or, worse, `NaN`/`Inf` parameters).
///
/// ```
/// use memhier_trace::fit::{fit_locality_checked, FitError};
/// assert!(matches!(
///     fit_locality_checked(&[]),
///     Err(FitError::TooFewPoints { usable: 0 })
/// ));
/// ```
pub fn fit_locality_checked(points: &[(f64, f64)]) -> Result<FitResult, FitError> {
    if let Some(&(x, p)) = points
        .iter()
        .find(|(x, p)| !x.is_finite() || !p.is_finite())
    {
        return Err(FitError::NonFinite { x, p });
    }
    let usable: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(x, p)| x > 0.0 && p > 0.0 && p < 1.0 - 1e-12)
        .collect();
    if usable.len() < 3 {
        return Err(FitError::TooFewPoints {
            usable: usable.len(),
        });
    }
    if usable.iter().all(|&(x, _)| x == usable[0].0) {
        return Err(FitError::Degenerate(
            "all points share one stack distance, so β is unconstrained",
        ));
    }

    // Golden-section search over ln β in [ln 1.001, ln 1e12].
    let golden = 0.618_033_988_749_895_f64;
    let mut a = 1.001f64.ln();
    let mut b = 1e12f64.ln();
    let mut c = b - golden * (b - a);
    let mut d = a + golden * (b - a);
    let mut fc = rss_for_beta(&usable, c.exp()).0;
    let mut fd = rss_for_beta(&usable, d.exp()).0;
    for _ in 0..200 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - golden * (b - a);
            fc = rss_for_beta(&usable, c.exp()).0;
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + golden * (b - a);
            fd = rss_for_beta(&usable, d.exp()).0;
        }
        if (b - a).abs() < 1e-12 {
            break;
        }
    }
    let beta = (0.5 * (a + b)).exp();
    let (rss, k) = rss_for_beta(&usable, beta);

    // The slope clamp in `rss_for_beta` floors k = α−1 at 1e-9; landing
    // exactly on the floor means the unconstrained solution had α ≤ 1
    // (probability mass *grows* with distance).
    if k <= 1e-9 {
        return Err(FitError::OutOfRange {
            alpha: 1.0 + k,
            beta,
        });
    }

    // R² in the log domain.
    let ys: Vec<f64> = usable.iter().map(|&(_, p)| (1.0 - p).ln()).collect();
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let tss: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
    let r2 = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

    if !k.is_finite() || !beta.is_finite() || !r2.is_finite() || beta <= 0.0 {
        return Err(FitError::Degenerate(
            "least squares produced non-finite or non-positive parameters",
        ));
    }

    Ok(FitResult {
        alpha: 1.0 + k,
        beta,
        r_squared: r2,
        points: usable.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::DistanceHistogram;
    use crate::stackdist::StackDistanceAnalyzer;
    use crate::synthetic::SyntheticTrace;

    fn perfect_points(alpha: f64, beta: f64, n: usize, x_max: f64) -> Vec<(f64, f64)> {
        (1..=n)
            .map(|i| {
                let x = x_max * i as f64 / n as f64;
                (x, 1.0 - (x / beta + 1.0).powf(-(alpha - 1.0)))
            })
            .collect()
    }

    #[test]
    fn recovers_exact_parameters() {
        for &(a, b) in &[(1.21, 103.26), (1.30, 90.27), (1.14, 120.84), (1.71, 85.03)] {
            let pts = perfect_points(a, b, 100, 20_000.0);
            let fit = fit_locality(&pts).unwrap();
            assert!((fit.alpha - a).abs() < 1e-3, "alpha {} vs {a}", fit.alpha);
            assert!((fit.beta - b).abs() / b < 0.01, "beta {} vs {b}", fit.beta);
            assert!(fit.r_squared > 0.9999);
        }
    }

    #[test]
    fn recovers_tpcc_scale_beta() {
        // β over 1000 (the paper's TPC-C characterization) must also fit.
        let pts = perfect_points(1.73, 1222.66, 120, 2e6);
        let fit = fit_locality(&pts).unwrap();
        assert!(
            (fit.beta - 1222.66).abs() / 1222.66 < 0.02,
            "beta {}",
            fit.beta
        );
    }

    #[test]
    fn too_few_points_is_none() {
        assert!(fit_locality(&[]).is_none());
        assert!(fit_locality(&[(10.0, 0.5), (20.0, 0.6)]).is_none());
        // Saturated points are dropped.
        let sat = [(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (4.0, 1.0)];
        assert!(fit_locality(&sat).is_none());
    }

    #[test]
    fn noisy_fit_still_close() {
        // Deterministic "noise" keeps the test reproducible.
        let mut pts = perfect_points(1.3, 90.0, 80, 10_000.0);
        for (i, p) in pts.iter_mut().enumerate() {
            let eps = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            p.1 = (p.1 + eps * 0.01).clamp(0.001, 0.999);
        }
        let fit = fit_locality(&pts).unwrap();
        assert!((fit.alpha - 1.3).abs() < 0.05);
        assert!((fit.beta - 90.0).abs() / 90.0 < 0.3);
    }

    #[test]
    fn end_to_end_synthetic_roundtrip() {
        // Generate a trace from a target (α, β), measure its stack
        // distances, fit, and recover the parameters within tolerance.
        let (alpha, beta) = (1.3, 90.0);
        let mut gen = SyntheticTrace::new(alpha, beta, 1, 12345);
        let mut an = StackDistanceAnalyzer::new(1);
        for _ in 0..200_000 {
            an.access(gen.next_address());
        }
        let fit = fit_locality(&an.histogram().cdf_points()).unwrap();
        assert!(
            (fit.alpha - alpha).abs() < 0.08,
            "alpha {} vs target {alpha}",
            fit.alpha
        );
        assert!(
            (fit.beta - beta).abs() / beta < 0.35,
            "beta {} vs target {beta}",
            fit.beta
        );
        assert!(fit.r_squared > 0.95, "r2 {}", fit.r_squared);
    }

    #[test]
    fn empty_histogram_is_typed_too_few_points() {
        let h = DistanceHistogram::new(64);
        assert_eq!(
            fit_locality_checked(&h.cdf_points()),
            Err(FitError::TooFewPoints { usable: 0 })
        );
    }

    #[test]
    fn all_equal_distances_rejected() {
        // Every reuse at the same distance: the histogram collapses to a
        // single CDF point (plus cold mass), which cannot constrain β.
        let mut h = DistanceHistogram::new(1);
        for _ in 0..10_000 {
            h.record(Some(17));
        }
        h.record(None);
        let err = fit_locality_checked(&h.cdf_points()).unwrap_err();
        assert!(
            matches!(err, FitError::TooFewPoints { usable: 1 }),
            "{err:?}"
        );
        // Raw caller-supplied points with one shared x hit the explicit
        // degeneracy guard instead.
        let flat = [(50.0, 0.2), (50.0, 0.4), (50.0, 0.6)];
        assert!(matches!(
            fit_locality_checked(&flat).unwrap_err(),
            FitError::Degenerate(_)
        ));
    }

    #[test]
    fn non_finite_points_rejected() {
        let pts = [(10.0, 0.1), (f64::NAN, 0.2), (30.0, 0.3)];
        assert!(matches!(
            fit_locality_checked(&pts).unwrap_err(),
            FitError::NonFinite { .. }
        ));
        let pts = [(10.0, 0.1), (20.0, f64::INFINITY), (30.0, 0.3)];
        assert!(matches!(
            fit_locality_checked(&pts).unwrap_err(),
            FitError::NonFinite { .. }
        ));
        // The unchecked API mirrors the rejection as None, never NaN.
        assert!(fit_locality(&pts).is_none());
    }

    #[test]
    fn anti_locality_hits_alpha_bound() {
        // A CDF that never accumulates mass (P ≈ 0 at every distance)
        // drives the slope α−1 into its 1e-9 floor: the old code silently
        // returned α = 1 + 1e-9; now it is a typed rejection.
        let pts = [
            (10.0, 1e-13),
            (100.0, 2e-13),
            (1000.0, 3e-13),
            (5000.0, 2e-13),
        ];
        match fit_locality_checked(&pts).unwrap_err() {
            FitError::OutOfRange { alpha, beta } => {
                assert!(alpha <= 1.0 + 1e-9, "alpha {alpha}");
                assert!(beta.is_finite());
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_without_panicking() {
        for e in [
            FitError::TooFewPoints { usable: 2 },
            FitError::NonFinite {
                x: f64::NAN,
                p: 0.5,
            },
            FitError::Degenerate("x"),
            FitError::OutOfRange {
                alpha: 1.0,
                beta: 2.0,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn fit_from_histogram_cdf_interface() {
        let mut h = DistanceHistogram::new(1);
        // Populate from the exact distribution's quantiles.
        let (alpha, beta) = (1.5, 50.0);
        for i in 0..50_000u64 {
            let u = (i as f64 + 0.5) / 50_000.0;
            let d = beta * ((1.0 - u).powf(-1.0 / (alpha - 1.0)) - 1.0);
            h.record(Some(d as u64));
        }
        let fit = fit_locality(&h.cdf_points()).unwrap();
        assert!((fit.alpha - alpha).abs() < 0.05, "alpha {}", fit.alpha);
        assert!((fit.beta - beta).abs() / beta < 0.15, "beta {}", fit.beta);
    }
}
