//! The `.mtr` binary address-trace format (MTR1) and its streaming
//! reader/writer.
//!
//! The paper's §7 toolchain starts from *measured* program traces; this
//! module is the container they travel in.  Design goals: compact
//! (delta + zigzag-varint address records — sequential scans cost ~1
//! byte/record), streamable (fixed-size CRC-checked blocks, so a reader
//! never holds more than one block), and self-describing (a versioned
//! header carrying record count, recording granularity, and the total
//! instruction count needed to recover ρ).
//!
//! ## Layout
//!
//! ```text
//! header  (36 bytes)                 block (repeated until EOF)
//! ┌────────────────────────────┐     ┌──────────────────────────────┐
//! │ 0..4   magic  "MTR1"       │     │ 0..4   payload length (LE32) │
//! │ 4..6   version (LE16) = 1  │     │ 4..8   record count  (LE32)  │
//! │ 6..8   flags  (LE16) = 0   │     │ 8..12  payload CRC32 (LE32)  │
//! │ 8..16  granularity (LE64)  │     │ 12..   payload               │
//! │ 16..24 record count (LE64) │     └──────────────────────────────┘
//! │ 24..32 total instr. (LE64) │
//! │ 32..36 header CRC32 (LE32) │     payload = zigzag-LEB128 varints
//! └────────────────────────────┘     of wrapping deltas from the
//!                                    previous address (stream-wide).
//! ```
//!
//! The writer emits a provisional header with record count
//! `u64::MAX`, then seeks back and patches the real counts in
//! [`TraceWriter::finish`]; a reader that sees the sentinel knows the
//! producer died mid-write ([`TraceError::Unfinished`]).  Every
//! corruption mode maps to a typed error: bad magic, unknown version,
//! CRC mismatch (header or block), truncation mid-block, and a
//! header/stream record-count disagreement for truncation at a block
//! boundary.

use crate::fit::FitError;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: `MTR1`.
pub const MAGIC: [u8; 4] = *b"MTR1";
/// Current (only) format version.
pub const FORMAT_VERSION: u16 = 1;
/// Default uncompressed payload size per block (the streaming unit).
pub const DEFAULT_BLOCK_PAYLOAD: usize = 64 * 1024;
/// Recommended file extension.
pub const EXTENSION: &str = "mtr";

const HEADER_LEN: usize = 36;
const BLOCK_HEADER_LEN: usize = 12;
const UNFINISHED_COUNT: u64 = u64::MAX;
/// Upper bound on a block payload a reader will allocate; a corrupt
/// length field fails loudly instead of attempting a huge allocation.
const MAX_BLOCK_PAYLOAD: usize = 16 * 1024 * 1024;

/// Why a trace could not be written, read, or analyzed.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header's version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// A checksum did not match (`what` = `"header"` or `"block"`).
    CrcMismatch {
        /// Which structure failed its checksum.
        what: &'static str,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed over the bytes read.
        computed: u32,
    },
    /// The file ends in the middle of a structure.
    Truncated(&'static str),
    /// The writer never called [`TraceWriter::finish`] (record count is
    /// still the in-progress sentinel).
    Unfinished,
    /// The header's record count disagrees with the records actually
    /// present — truncation or concatenation at a block boundary.
    CountMismatch {
        /// Record count promised by the header.
        header: u64,
        /// Records actually decoded from the stream.
        read: u64,
    },
    /// Locality fitting over the trace failed.
    Fit(FitError),
    /// A required request field was never supplied.
    Missing(&'static str),
    /// A request field was present but malformed (field name, why).
    Invalid(&'static str, String),
    /// An object key no request field matches (typo guard).
    UnknownField(String),
    /// The input was not valid JSON.
    Syntax(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O: {e}"),
            TraceError::BadMagic(m) => write!(
                f,
                "not an MTR trace (magic {:02x?}, expected {:02x?})",
                m, MAGIC
            ),
            TraceError::UnsupportedVersion(v) => write!(
                f,
                "trace format version {v} is newer than supported ({FORMAT_VERSION})"
            ),
            TraceError::CrcMismatch {
                what,
                stored,
                computed,
            } => write!(
                f,
                "{what} checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TraceError::Truncated(what) => write!(f, "trace truncated mid-{what}"),
            TraceError::Unfinished => {
                write!(f, "trace was never finalized (writer did not finish)")
            }
            TraceError::CountMismatch { header, read } => write!(
                f,
                "header promises {header} records but the stream holds {read}"
            ),
            TraceError::Fit(e) => write!(f, "fit: {e}"),
            TraceError::Missing(field) => write!(f, "`{field}` is required"),
            TraceError::Invalid(field, why) => write!(f, "`{field}`: {why}"),
            TraceError::UnknownField(key) => write!(f, "unknown request field `{key}`"),
            TraceError::Syntax(why) => write!(f, "malformed request: {why}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<FitError> for TraceError {
    fn from(e: FitError) -> Self {
        TraceError::Fit(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Parsed `.mtr` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version.
    pub version: u16,
    /// Byte granularity the producer recorded at (1 = raw byte
    /// addresses; analysis may coarsen further).
    pub granularity: u64,
    /// Number of address records in the file.
    pub record_count: u64,
    /// Total instructions (memory + compute) the traced run executed;
    /// `ρ = record_count / total_instructions`.
    pub total_instructions: u64,
}

fn encode_header(granularity: u64, record_count: u64, total_instructions: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // 6..8: flags, reserved as zero.
    h[8..16].copy_from_slice(&granularity.to_le_bytes());
    h[16..24].copy_from_slice(&record_count.to_le_bytes());
    h[24..32].copy_from_slice(&total_instructions.to_le_bytes());
    let crc = crc32(&h[0..32]);
    h[32..36].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Streaming `.mtr` writer over any `Write + Seek` sink.
///
/// Feed addresses with [`record`](TraceWriter::record); the file is not
/// valid until [`finish`](TraceWriter::finish) patches the header with
/// the final record and instruction counts.
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    payload: Vec<u8>,
    block_records: u32,
    block_limit: usize,
    prev: u64,
    records: u64,
    granularity: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Create (truncating) a trace file at `path`.
    pub fn create(path: &Path, granularity: u64) -> Result<Self, TraceError> {
        TraceWriter::new(BufWriter::new(File::create(path)?), granularity)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Start a trace on `sink`, writing a provisional header.
    pub fn new(mut sink: W, granularity: u64) -> Result<Self, TraceError> {
        sink.write_all(&encode_header(granularity, UNFINISHED_COUNT, 0))?;
        Ok(TraceWriter {
            sink,
            payload: Vec::with_capacity(DEFAULT_BLOCK_PAYLOAD + 10),
            block_records: 0,
            block_limit: DEFAULT_BLOCK_PAYLOAD,
            prev: 0,
            records: 0,
            granularity,
        })
    }

    /// Override the per-block payload size (test hook; smaller blocks
    /// exercise more block boundaries).
    pub fn with_block_payload(mut self, bytes: usize) -> Self {
        self.block_limit = bytes.max(10);
        self
    }

    /// Append one address record.
    pub fn record(&mut self, addr: u64) -> Result<(), TraceError> {
        let delta = addr.wrapping_sub(self.prev) as i64;
        self.prev = addr;
        push_varint(&mut self.payload, zigzag(delta));
        self.block_records += 1;
        self.records += 1;
        if self.payload.len() >= self.block_limit {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn flush_block(&mut self) -> Result<(), TraceError> {
        if self.payload.is_empty() {
            return Ok(());
        }
        let mut head = [0u8; BLOCK_HEADER_LEN];
        head[0..4].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        head[4..8].copy_from_slice(&self.block_records.to_le_bytes());
        head[8..12].copy_from_slice(&crc32(&self.payload).to_le_bytes());
        self.sink.write_all(&head)?;
        self.sink.write_all(&self.payload)?;
        self.payload.clear();
        self.block_records = 0;
        Ok(())
    }

    /// Flush the final block, patch the header with the real record and
    /// instruction counts, and return the record count.  The sink is
    /// flushed but not dropped until the writer is.
    pub fn finish(mut self, total_instructions: u64) -> Result<u64, TraceError> {
        self.flush_block()?;
        self.sink.seek(SeekFrom::Start(0))?;
        self.sink.write_all(&encode_header(
            self.granularity,
            self.records,
            total_instructions,
        ))?;
        self.sink.flush()?;
        Ok(self.records)
    }
}

/// Streaming `.mtr` reader: validates the header eagerly, then decodes
/// one CRC-checked block at a time (bounded memory regardless of trace
/// size).  Iterate records via [`next_record`](TraceReader::next_record)
/// or the [`Iterator`] impl.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    header: TraceHeader,
    block: Vec<u64>,
    pos: usize,
    prev: u64,
    read_records: u64,
    done: bool,
}

impl TraceReader<BufReader<File>> {
    /// Open a trace file at `path`.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Wrap `src`, reading and validating the header.
    pub fn new(mut src: R) -> Result<Self, TraceError> {
        let mut h = [0u8; HEADER_LEN];
        src.read_exact(&mut h)
            .map_err(|e| truncated_as(e, "header"))?;
        if h[0..4] != MAGIC {
            return Err(TraceError::BadMagic([h[0], h[1], h[2], h[3]]));
        }
        let stored = u32::from_le_bytes(h[32..36].try_into().unwrap());
        let computed = crc32(&h[0..32]);
        if stored != computed {
            return Err(TraceError::CrcMismatch {
                what: "header",
                stored,
                computed,
            });
        }
        let version = u16::from_le_bytes(h[4..6].try_into().unwrap());
        if version > FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let record_count = u64::from_le_bytes(h[16..24].try_into().unwrap());
        if record_count == UNFINISHED_COUNT {
            return Err(TraceError::Unfinished);
        }
        Ok(TraceReader {
            src,
            header: TraceHeader {
                version,
                granularity: u64::from_le_bytes(h[8..16].try_into().unwrap()),
                record_count,
                total_instructions: u64::from_le_bytes(h[24..32].try_into().unwrap()),
            },
            block: Vec::new(),
            pos: 0,
            prev: 0,
            read_records: 0,
            done: false,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Next address, `Ok(None)` at a clean end of trace.
    pub fn next_record(&mut self) -> Result<Option<u64>, TraceError> {
        if self.pos == self.block.len() && (self.done || !self.read_block()?) {
            // End of stream: the header must agree.
            if self.read_records != self.header.record_count {
                return Err(TraceError::CountMismatch {
                    header: self.header.record_count,
                    read: self.read_records,
                });
            }
            return Ok(None);
        }
        let addr = self.block[self.pos];
        self.pos += 1;
        self.read_records += 1;
        Ok(Some(addr))
    }

    /// Read and decode the next block; `Ok(false)` at clean EOF.
    fn read_block(&mut self) -> Result<bool, TraceError> {
        let mut head = [0u8; BLOCK_HEADER_LEN];
        // A clean EOF may only occur *between* blocks.
        match self.src.read(&mut head[..1])? {
            0 => {
                self.done = true;
                return Ok(false);
            }
            _ => self
                .src
                .read_exact(&mut head[1..])
                .map_err(|e| truncated_as(e, "block header"))?,
        }
        let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
        let count = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(head[8..12].try_into().unwrap());
        if len == 0 || len > MAX_BLOCK_PAYLOAD {
            return Err(TraceError::Invalid(
                "block",
                format!("implausible payload length {len}"),
            ));
        }
        let mut payload = vec![0u8; len];
        self.src
            .read_exact(&mut payload)
            .map_err(|e| truncated_as(e, "block payload"))?;
        let computed = crc32(&payload);
        if stored != computed {
            return Err(TraceError::CrcMismatch {
                what: "block",
                stored,
                computed,
            });
        }
        self.block.clear();
        self.block.reserve(count);
        let mut pos = 0usize;
        let mut prev = self.prev;
        while pos < payload.len() {
            let mut v = 0u64;
            let mut shift = 0u32;
            loop {
                let byte = *payload.get(pos).ok_or(TraceError::Truncated("varint"))?;
                pos += 1;
                if shift >= 64 {
                    return Err(TraceError::Invalid(
                        "block",
                        "varint longer than 64 bits".to_string(),
                    ));
                }
                v |= u64::from(byte & 0x7F) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            prev = prev.wrapping_add(unzigzag(v) as u64);
            self.block.push(prev);
        }
        if self.block.len() != count {
            return Err(TraceError::Invalid(
                "block",
                format!(
                    "block promises {count} records, decoded {}",
                    self.block.len()
                ),
            ));
        }
        self.prev = prev;
        self.pos = 0;
        Ok(true)
    }
}

fn truncated_as(e: io::Error, what: &'static str) -> TraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        TraceError::Truncated(what)
    } else {
        TraceError::Io(e)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<u64, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_record() {
            Ok(Some(addr)) => Some(Ok(addr)),
            Ok(None) => None,
            Err(e) => {
                // Poison further iteration rather than looping on the
                // same error.
                self.done = true;
                self.pos = 0;
                self.block.clear();
                self.read_records = self.header.record_count;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(addrs: &[u64], block_payload: usize) -> Vec<u64> {
        let bytes = encode(addrs, block_payload, 123);
        let r = TraceReader::new(Cursor::new(&bytes)).unwrap();
        r.map(|x| x.unwrap()).collect()
    }

    fn encode(addrs: &[u64], block_payload: usize, ti: u64) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        {
            let mut w = TraceWriter::new(&mut cur, 1)
                .unwrap()
                .with_block_payload(block_payload);
            for &a in addrs {
                w.record(a).unwrap();
            }
            w.finish(ti).unwrap();
        }
        cur.into_inner()
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 1 << 40] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode(&[], DEFAULT_BLOCK_PAYLOAD, 0);
        assert_eq!(bytes.len(), HEADER_LEN);
        let mut r = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(r.header().record_count, 0);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn addresses_roundtrip_across_block_sizes() {
        let addrs: Vec<u64> = (0..5000u64)
            .map(|i| (i * 2654435761) % 1_000_000 + (i % 7) * u32::MAX as u64)
            .collect();
        for bp in [16, 100, 4096, DEFAULT_BLOCK_PAYLOAD] {
            assert_eq!(roundtrip(&addrs, bp), addrs, "block payload {bp}");
        }
    }

    #[test]
    fn extreme_addresses_roundtrip() {
        let addrs = [0u64, u64::MAX, 0, 1, u64::MAX - 1, 1 << 63, 42];
        assert_eq!(roundtrip(&addrs, 16), addrs);
    }

    #[test]
    fn header_carries_counts() {
        let bytes = encode(&[1, 2, 3], 64, 999);
        let r = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(r.header().record_count, 3);
        assert_eq!(r.header().total_instructions, 999);
        assert_eq!(r.header().granularity, 1);
        assert_eq!(r.header().version, FORMAT_VERSION);
    }

    #[test]
    fn sequential_scan_is_compact() {
        let addrs: Vec<u64> = (0..10_000u64).map(|i| i * 8).collect();
        let bytes = encode(&addrs, DEFAULT_BLOCK_PAYLOAD, 0);
        // Constant delta of 8 → 1 byte per record plus framing.
        assert!(
            bytes.len() < HEADER_LEN + addrs.len() + 2 * BLOCK_HEADER_LEN,
            "{} bytes for {} records",
            bytes.len(),
            addrs.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&[1, 2, 3], 64, 0);
        bytes[0] = b'X';
        assert!(matches!(
            TraceReader::new(Cursor::new(&bytes)).unwrap_err(),
            TraceError::BadMagic(_)
        ));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = encode(&[1], 64, 0);
        bytes[4] = 9; // version 9
        let crc = crc32(&bytes[0..32]).to_le_bytes();
        bytes[32..36].copy_from_slice(&crc);
        assert!(matches!(
            TraceReader::new(Cursor::new(&bytes)).unwrap_err(),
            TraceError::UnsupportedVersion(9)
        ));
    }

    #[test]
    fn header_corruption_is_crc_mismatch() {
        let mut bytes = encode(&[1, 2, 3], 64, 7);
        bytes[20] ^= 0xFF; // record count byte
        assert!(matches!(
            TraceReader::new(Cursor::new(&bytes)).unwrap_err(),
            TraceError::CrcMismatch { what: "header", .. }
        ));
    }

    #[test]
    fn payload_corruption_is_crc_mismatch() {
        let bytes = encode(&(0..100u64).collect::<Vec<_>>(), 64, 0);
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x01;
        let mut r = TraceReader::new(Cursor::new(&corrupt)).unwrap();
        let err = loop {
            match r.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corruption not detected"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceError::CrcMismatch { what: "block", .. }));
    }

    #[test]
    fn truncation_mid_block_detected() {
        let bytes = encode(&(0..1000u64).collect::<Vec<_>>(), 256, 0);
        let cut = &bytes[..bytes.len() - 5];
        let mut r = TraceReader::new(Cursor::new(cut)).unwrap();
        let err = r.find_map(|x| x.err()).expect("must error");
        assert!(matches!(err, TraceError::Truncated(_)), "{err:?}");
    }

    #[test]
    fn truncation_at_block_boundary_detected() {
        // Drop a whole trailing block: CRCs all pass, but the header's
        // record count exposes the loss.
        let addrs: Vec<u64> = (0..1000).map(|i| i * 31).collect();
        let bytes = encode(&addrs, 128, 0);
        // Find the start of the last block by walking the chain.
        let mut off = HEADER_LEN;
        let mut last = off;
        while off < bytes.len() {
            last = off;
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += BLOCK_HEADER_LEN + len;
        }
        let mut r = TraceReader::new(Cursor::new(&bytes[..last])).unwrap();
        let err = r.find_map(|x| x.err()).expect("must error");
        assert!(matches!(err, TraceError::CountMismatch { .. }), "{err:?}");
    }

    #[test]
    fn unfinished_writer_detected() {
        let mut cur = Cursor::new(Vec::new());
        {
            let mut w = TraceWriter::new(&mut cur, 1).unwrap();
            w.record(42).unwrap();
            // No finish(): provisional header stays in place, and the
            // last block was never flushed.
        }
        let bytes = cur.into_inner();
        assert!(matches!(
            TraceReader::new(Cursor::new(&bytes)).unwrap_err(),
            TraceError::Unfinished
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            TraceError::BadMagic(*b"ELF\0"),
            TraceError::UnsupportedVersion(2),
            TraceError::CrcMismatch {
                what: "block",
                stored: 1,
                computed: 2,
            },
            TraceError::Truncated("header"),
            TraceError::Unfinished,
            TraceError::CountMismatch { header: 5, read: 3 },
            TraceError::Missing("trace"),
            TraceError::UnknownField("alpa".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
