//! Stack-distance histograms and empirical CDFs.
//!
//! Distances below [`DistanceHistogram::LINEAR_LIMIT`] are counted exactly;
//! larger ones fall into logarithmic buckets (16 per octave), which is far
//! finer than the fitting procedure needs while keeping the histogram a few
//! kilobytes regardless of trace length.

use serde::{Deserialize, Serialize};

/// Histogram of LRU stack distances (in blocks) with a separate cold-miss
/// (infinite distance) counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    /// Block size in bytes used when reporting byte-denominated CDFs.
    granularity: u64,
    /// Exact counts for distances `0..LINEAR_LIMIT`.
    linear: Vec<u64>,
    /// Log buckets: index `i` covers distances in
    /// `[LINEAR_LIMIT · 2^(i/16), LINEAR_LIMIT · 2^((i+1)/16))`.
    log: Vec<u64>,
    cold: u64,
    total: u64,
}

impl DistanceHistogram {
    /// Distances below this are counted exactly.
    pub const LINEAR_LIMIT: u64 = 256;
    /// Log sub-buckets per octave.
    const PER_OCTAVE: usize = 16;

    /// New empty histogram; `granularity` is the byte size of the blocks
    /// distances were counted in.
    pub fn new(granularity: u64) -> Self {
        DistanceHistogram {
            granularity,
            linear: vec![0; Self::LINEAR_LIMIT as usize],
            log: Vec::new(),
            cold: 0,
            total: 0,
        }
    }

    fn log_bucket(d: u64) -> usize {
        debug_assert!(d >= Self::LINEAR_LIMIT);
        let x = d as f64 / Self::LINEAR_LIMIT as f64;
        (x.log2() * Self::PER_OCTAVE as f64).floor() as usize
    }

    /// Upper distance bound (exclusive) of log bucket `i`.
    fn log_bucket_hi(i: usize) -> f64 {
        Self::LINEAR_LIMIT as f64 * 2f64.powf((i + 1) as f64 / Self::PER_OCTAVE as f64)
    }

    /// Record one distance (`None` = cold/infinite).
    pub fn record(&mut self, d: Option<u64>) {
        self.total += 1;
        match d {
            None => self.cold += 1,
            Some(d) if d < Self::LINEAR_LIMIT => self.linear[d as usize] += 1,
            Some(d) => {
                let b = Self::log_bucket(d);
                if b >= self.log.len() {
                    self.log.resize(b + 1, 0);
                }
                self.log[b] += 1;
            }
        }
    }

    /// Total references recorded.
    pub fn total_refs(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) references.
    pub fn cold_refs(&self) -> u64 {
        self.cold
    }

    /// Block granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Deterministic resident size of the bucket arrays in bytes.  The
    /// log-bucket scheme caps this at a few kilobytes no matter how long
    /// the trace runs (64 buckets per factor-of-16 in distance).
    pub fn state_bytes(&self) -> u64 {
        (self.linear.len() + self.log.len()) as u64 * 8 + 32
    }

    /// Merge another histogram (e.g. from another SPMD process) into this
    /// one.  Panics if granularities differ.
    pub fn merge(&mut self, other: &DistanceHistogram) {
        assert_eq!(self.granularity, other.granularity, "granularity mismatch");
        for (a, b) in self.linear.iter_mut().zip(&other.linear) {
            *a += b;
        }
        if other.log.len() > self.log.len() {
            self.log.resize(other.log.len(), 0);
        }
        for (i, b) in other.log.iter().enumerate() {
            self.log[i] += b;
        }
        self.cold += other.cold;
        self.total += other.total;
    }

    /// Empirical cumulative distribution: points `(x_bytes, P(x))` where
    /// `P(x)` is the fraction of *all* references (cold included in the
    /// denominator) with stack distance ≤ `x`.  Only non-empty buckets
    /// produce points; `x` is the bucket's upper bound converted to bytes.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let tot = self.total as f64;
        let g = self.granularity as f64;
        let mut acc = 0u64;
        let mut out = Vec::new();
        for (d, &c) in self.linear.iter().enumerate() {
            if c > 0 {
                acc += c;
                // A distance of d blocks means d+1 distinct blocks fit.
                out.push(((d as f64 + 1.0) * g, acc as f64 / tot));
            }
        }
        for (i, &c) in self.log.iter().enumerate() {
            if c > 0 {
                acc += c;
                out.push((Self::log_bucket_hi(i) * g, acc as f64 / tot));
            }
        }
        out
    }

    /// The **miss-ratio curve**: `(capacity_bytes, miss_ratio)` sampled at
    /// `points` logarithmically-spaced capacities between one block and
    /// just past the largest observed distance.  `miss_ratio` is the
    /// fraction of references a fully-associative LRU store of that
    /// capacity would miss (cold misses always miss).
    pub fn miss_ratio_curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.total == 0 || points == 0 {
            return Vec::new();
        }
        let lo = self.granularity as f64;
        let hi = self
            .cdf_points()
            .last()
            .map(|&(x, _)| x * 2.0)
            .unwrap_or(lo * 2.0)
            .max(lo * 2.0);
        (0..points)
            .map(|i| {
                let cap = lo * (hi / lo).powf(i as f64 / (points - 1).max(1) as f64);
                (cap, self.tail_at(cap))
            })
            .collect()
    }

    /// Fraction of references with distance `> x_bytes` (the empirical
    /// counterpart of the model's tail `∫_s^∞ p`); cold misses count as
    /// beyond every finite `x`.
    pub fn tail_at(&self, x_bytes: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let x_blocks = x_bytes / self.granularity as f64;
        let mut le = 0u64;
        for (d, &c) in self.linear.iter().enumerate() {
            if (d as f64 + 1.0) <= x_blocks {
                le += c;
            }
        }
        for (i, &c) in self.log.iter().enumerate() {
            if Self::log_bucket_hi(i) <= x_blocks {
                le += c;
            }
        }
        1.0 - le as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut h = DistanceHistogram::new(64);
        h.record(Some(0));
        h.record(Some(5));
        h.record(Some(1_000_000));
        h.record(None);
        assert_eq!(h.total_refs(), 4);
        assert_eq!(h.cold_refs(), 1);
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let mut h = DistanceHistogram::new(64);
        for d in 0..10_000u64 {
            h.record(Some(d % 997));
        }
        h.record(None);
        let cdf = h.cdf_points();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(x, p) in &cdf {
            assert!(x > 0.0);
            assert!(p >= prev && p <= 1.0);
            prev = p;
        }
        // Cold miss keeps the CDF strictly below 1.
        assert!(prev < 1.0);
    }

    #[test]
    fn cdf_x_values_increasing() {
        let mut h = DistanceHistogram::new(1);
        for d in [1u64, 10, 100, 1000, 10_000, 100_000] {
            h.record(Some(d));
        }
        let xs: Vec<f64> = h.cdf_points().iter().map(|p| p.0).collect();
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "{xs:?}");
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = DistanceHistogram::new(64);
        let mut b = DistanceHistogram::new(64);
        for d in 0..500u64 {
            a.record(Some(d));
            b.record(Some(d * 3));
        }
        b.record(None);
        let ta = a.total_refs();
        a.merge(&b);
        assert_eq!(a.total_refs(), ta + 501);
        assert_eq!(a.cold_refs(), 1);
    }

    #[test]
    #[should_panic(expected = "granularity mismatch")]
    fn merge_rejects_mixed_granularity() {
        let mut a = DistanceHistogram::new(64);
        let b = DistanceHistogram::new(32);
        a.merge(&b);
    }

    #[test]
    fn tail_complements_cdf() {
        let mut h = DistanceHistogram::new(1);
        for d in 0..1000u64 {
            h.record(Some(d));
        }
        // At a point beyond every distance the tail is 0.
        assert!(h.tail_at(1e12) < 1e-12);
        // At 0 the tail is 1 (all distances need at least 1 block).
        assert_eq!(h.tail_at(0.0), 1.0);
        // Roughly half the mass lies beyond the median distance.
        let t = h.tail_at(500.0);
        assert!((t - 0.5).abs() < 0.05, "tail at median = {t}");
    }

    #[test]
    fn empty_histogram_safe() {
        let h = DistanceHistogram::new(64);
        assert!(h.cdf_points().is_empty());
        assert_eq!(h.tail_at(100.0), 0.0);
        assert!(h.miss_ratio_curve(10).is_empty());
    }

    #[test]
    fn miss_ratio_curve_monotone_nonincreasing() {
        let mut h = DistanceHistogram::new(64);
        for d in 0..5000u64 {
            h.record(Some(d % 777));
        }
        h.record(None);
        let curve = h.miss_ratio_curve(32);
        assert_eq!(curve.len(), 32);
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0, "capacities increase");
            assert!(w[0].1 + 1e-12 >= w[1].1, "miss ratio non-increasing");
        }
        // Bigger than everything: only the cold miss remains.
        let last = curve.last().unwrap().1;
        assert!((last - 1.0 / 5001.0).abs() < 1e-6, "last = {last}");
    }

    #[test]
    fn log_bucket_boundaries_consistent() {
        // Every log bucket's hi bound exceeds the distances it receives.
        for d in [256u64, 300, 512, 1023, 1 << 20] {
            let b = DistanceHistogram::log_bucket(d);
            assert!(DistanceHistogram::log_bucket_hi(b) > d as f64);
            if b > 0 {
                assert!(DistanceHistogram::log_bucket_hi(b - 1) <= (d + 1) as f64);
            }
        }
    }
}
