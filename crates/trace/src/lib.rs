//! # memhier-trace
//!
//! Address-trace collection and analysis for the IPPS'99 memory-hierarchy
//! model: exact LRU **stack-distance** computation (Bennett–Kruskal with a
//! Fenwick tree), distance **histograms** and empirical CDFs, least-squares
//! **fitting** of the paper's locality parameters `(α, β)` (eq. 1), the
//! memory-reference density **ρ**, and a **synthetic trace generator** that
//! draws references from a target `(α, β)` distribution (used both for
//! property tests and for controlled model-vs-simulation experiments).
//!
//! The paper's §7 sketches exactly this toolchain: "(1) an efficient tool to
//! collect application program memory access traces, (2) a trace analysis
//! tool to compute the application parameters α, β, and ρ".
//!
//! ## Pipeline
//!
//! ```
//! use memhier_trace::{StackDistanceAnalyzer, fit::fit_locality};
//!
//! // Feed block addresses through the analyzer ...
//! let mut an = StackDistanceAnalyzer::new(64); // 64-byte granularity
//! for addr in [0u64, 64, 0, 128, 64, 0, 192, 0] {
//!     an.access(addr);
//! }
//! let hist = an.histogram();
//! assert_eq!(hist.total_refs(), 8);
//! // ... and fit (needs more data than this toy trace for a good fit).
//! let cdf = hist.cdf_points();
//! assert!(!cdf.is_empty());
//! let _fit = fit_locality(&cdf);
//! ```

pub mod fit;
pub mod format;
pub mod histogram;
pub mod phase;
pub mod stackdist;
pub mod stats;
pub mod stream;
pub mod synthetic;

pub use fit::{fit_locality, fit_locality_checked, FitError, FitResult};
pub use format::{TraceError, TraceHeader, TraceReader, TraceWriter};
pub use histogram::DistanceHistogram;
pub use phase::{PhaseAnalyzer, PhaseSummary};
pub use stackdist::{NaiveStackDistance, StackDistanceAnalyzer};
pub use stats::TraceStats;
pub use stream::{run_fit, FitReport, FitRequest, FitSnapshot, StreamAnalyzer};
pub use synthetic::SyntheticTrace;
