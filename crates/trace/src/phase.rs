//! Per-phase trace analysis.
//!
//! The paper's workloads are bulk-synchronous: phases of pure computation
//! separated by barriers (§3).  A single `(α, β)` fit over the whole trace
//! blends phases with very different locality (e.g. EDGE's 3×3-window
//! blur vs its whole-plane copy), which is where the global fit degrades
//! (see EXPERIMENTS.md, Table 2 discussion).  [`PhaseAnalyzer`] maintains
//! a per-phase histogram alongside the global one, so each phase can be
//! fitted on its own.

use crate::fit::{fit_locality, FitResult};
use crate::histogram::DistanceHistogram;
use crate::stackdist::StackDistanceAnalyzer;
use serde::{Deserialize, Serialize};

/// Summary of one inter-barrier phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase index (0 = before the first barrier).
    pub index: usize,
    /// References in this phase.
    pub refs: u64,
    /// Locality fit for this phase's distances (`None` if too few points).
    pub fit: Option<FitResult>,
    /// Fraction of this phase's references that are cold *globally*
    /// (first-ever touches — an inter-phase reuse indicator).
    pub cold_fraction: f64,
}

/// A stack-distance analyzer that additionally segments by phase.
///
/// Distances are always computed against the **global** LRU stack (reuse
/// across a barrier is real reuse); only the bookkeeping is per phase.
pub struct PhaseAnalyzer {
    inner: StackDistanceAnalyzer,
    current: DistanceHistogram,
    phases: Vec<DistanceHistogram>,
}

impl PhaseAnalyzer {
    /// See [`StackDistanceAnalyzer::new`] for `granularity`.
    pub fn new(granularity: u64) -> Self {
        PhaseAnalyzer {
            inner: StackDistanceAnalyzer::new(granularity),
            current: DistanceHistogram::new(granularity),
            phases: Vec::new(),
        }
    }

    /// Record one reference.
    pub fn access(&mut self, addr: u64) {
        let d = self.inner.access(addr);
        self.current.record(d);
    }

    /// Record a barrier: close the current phase.
    pub fn barrier(&mut self) {
        let g = self.current.granularity();
        let closed = std::mem::replace(&mut self.current, DistanceHistogram::new(g));
        self.phases.push(closed);
    }

    /// Number of closed phases.
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    /// The global (whole-trace) analyzer.
    pub fn global(&self) -> &StackDistanceAnalyzer {
        &self.inner
    }

    /// Finish: close any trailing partial phase and summarize each phase.
    pub fn finish(mut self) -> (Vec<PhaseSummary>, DistanceHistogram) {
        if self.current.total_refs() > 0 {
            self.barrier();
        }
        let global = self.inner.histogram();
        let summaries = self
            .phases
            .iter()
            .enumerate()
            .map(|(index, h)| PhaseSummary {
                index,
                refs: h.total_refs(),
                fit: fit_locality(&h.cdf_points()),
                cold_fraction: if h.total_refs() == 0 {
                    0.0
                } else {
                    h.cold_refs() as f64 / h.total_refs() as f64
                },
            })
            .collect();
        (summaries, global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTrace;

    #[test]
    fn phases_partition_the_trace() {
        let mut an = PhaseAnalyzer::new(1);
        for i in 0..100u64 {
            an.access(i % 10);
        }
        an.barrier();
        for i in 0..50u64 {
            an.access(i % 5);
        }
        let (phases, global) = an.finish();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].refs, 100);
        assert_eq!(phases[1].refs, 50);
        assert_eq!(global.total_refs(), 150);
    }

    #[test]
    fn cross_phase_reuse_counts_as_reuse() {
        let mut an = PhaseAnalyzer::new(1);
        an.access(7);
        an.barrier();
        an.access(7); // same block, next phase: a global reuse, not cold
        let (phases, global) = an.finish();
        assert_eq!(phases[1].cold_fraction, 0.0, "{phases:?}");
        assert_eq!(global.cold_refs(), 1);
    }

    #[test]
    fn per_phase_fits_differ_for_mixed_trace() {
        // Phase 0: tight reuse (β small); phase 1: wide reuse (β large).
        let mut an = PhaseAnalyzer::new(1);
        let mut tight = SyntheticTrace::new(1.5, 20.0, 1, 1);
        for _ in 0..40_000 {
            an.access(tight.next_address());
        }
        an.barrier();
        let mut wide = SyntheticTrace::new(1.5, 4000.0, 1, 2).with_base_block(1 << 40);
        for _ in 0..40_000 {
            an.access(wide.next_address());
        }
        let (phases, _) = an.finish();
        let b0 = phases[0].fit.unwrap().beta;
        let b1 = phases[1].fit.unwrap().beta;
        assert!(b1 > 5.0 * b0, "phase betas should separate: {b0} vs {b1}");
    }

    #[test]
    fn trailing_partial_phase_is_closed() {
        let mut an = PhaseAnalyzer::new(1);
        an.access(1);
        an.access(2);
        let (phases, _) = an.finish();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].refs, 2);
    }

    #[test]
    fn empty_analyzer_finishes_clean() {
        let an = PhaseAnalyzer::new(64);
        let (phases, global) = an.finish();
        assert!(phases.is_empty());
        assert_eq!(global.total_refs(), 0);
    }
}
