//! Exact LRU stack-distance computation.
//!
//! The stack distance of a reference is the number of **distinct other
//! blocks** referenced since the previous reference to the same block
//! (∞ for a block's first reference).  A reference hits in a
//! fully-associative LRU store of capacity `C` blocks iff its stack
//! distance is `< C`.
//!
//! [`StackDistanceAnalyzer`] implements the Bennett–Kruskal algorithm: a
//! Fenwick (binary indexed) tree over reference time slots holds a 1 at the
//! slot of each block's most recent access; the distance of a reuse is the
//! count of set slots after the block's previous slot.  Slots are compacted
//! when the index space fills, so memory is `O(live blocks)`, time
//! `O(log M)` per reference.
//!
//! [`NaiveStackDistance`] is the obviously-correct `O(M · B)` reference
//! implementation (an explicit LRU stack) used by the property tests.

use crate::histogram::DistanceHistogram;
use std::collections::HashMap;

/// Fenwick tree over time slots (1-based internally).
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(capacity: usize) -> Self {
        Fenwick {
            tree: vec![0; capacity + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Add `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based).
    fn prefix(&self, i: usize) -> u32 {
        let mut i = i + 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming exact stack-distance analyzer over block addresses.
///
/// Addresses are mapped to blocks of `granularity` bytes before analysis;
/// distances are counted in **blocks** and can be converted to bytes with
/// [`StackDistanceAnalyzer::granularity`].
pub struct StackDistanceAnalyzer {
    granularity: u64,
    /// Block → slot of its most recent access.
    last_slot: HashMap<u64, usize>,
    bit: Fenwick,
    next_slot: usize,
    live: u32,
    hist: DistanceHistogram,
}

impl StackDistanceAnalyzer {
    /// Initial Fenwick index space; grows by compaction, never allocation
    /// beyond `2 × live blocks` after the first compaction.
    const INITIAL_SLOTS: usize = 1 << 16;

    /// Create an analyzer mapping addresses to `granularity`-byte blocks
    /// (`granularity` must be a power of two; 64 = cache-line granularity).
    pub fn new(granularity: u64) -> Self {
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        StackDistanceAnalyzer {
            granularity,
            last_slot: HashMap::new(),
            bit: Fenwick::new(Self::INITIAL_SLOTS),
            next_slot: 0,
            live: 0,
            hist: DistanceHistogram::new(granularity),
        }
    }

    /// The block size in bytes distances are counted in.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// Process one reference to byte address `addr`.  Returns the stack
    /// distance in blocks, or `None` for a cold (first) reference.
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        let block = addr / self.granularity;
        if self.next_slot == self.bit.len() {
            self.compact();
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        let d = match self.last_slot.insert(block, slot) {
            Some(old) => {
                // Distinct blocks touched strictly after `old`: every live
                // block's flag sits at its latest slot, so count flags in
                // (old, now) = live − prefix(old).
                let d = (self.live - self.bit.prefix(old)) as u64;
                self.bit.add(old, -1);
                self.bit.add(slot, 1);
                Some(d)
            }
            None => {
                self.live += 1;
                self.bit.add(slot, 1);
                None
            }
        };
        self.hist.record(d);
        d
    }

    /// Rebuild the Fenwick index space, keeping only live flags in their
    /// relative order.  Amortized O(1) per reference.
    fn compact(&mut self) {
        let mut order: Vec<(usize, u64)> = self.last_slot.iter().map(|(&b, &s)| (s, b)).collect();
        order.sort_unstable();
        let new_cap = (order.len() * 2).max(Self::INITIAL_SLOTS);
        let mut bit = Fenwick::new(new_cap);
        for (new_slot, &(_, block)) in order.iter().enumerate() {
            bit.add(new_slot, 1);
            *self.last_slot.get_mut(&block).expect("block is live") = new_slot;
        }
        self.next_slot = order.len();
        self.bit = bit;
    }

    /// Number of distinct blocks seen so far.
    pub fn unique_blocks(&self) -> u32 {
        self.live
    }

    /// Deterministic estimate of the analyzer's resident state in bytes
    /// (Fenwick slots + block map entries + histogram buckets), computed
    /// from container lengths so identical inputs report identical
    /// sizes.  This is what the out-of-core pipeline's memory-bound
    /// assertions measure: it scales with *live blocks*, never with
    /// trace length.
    pub fn state_bytes(&self) -> u64 {
        let fenwick = self.bit.tree.len() as u64 * 4;
        // HashMap entry: key + value + ~1/3 table overhead, rounded to
        // 24 bytes per live block.
        let map = self.last_slot.len() as u64 * 24;
        fenwick + map + self.hist.state_bytes()
    }

    /// The accumulated distance histogram (distances in blocks; the
    /// histogram knows the byte granularity for CDF conversion).
    pub fn histogram(&self) -> DistanceHistogram {
        self.hist.clone()
    }

    /// Consume the analyzer, returning the histogram without cloning.
    pub fn into_histogram(self) -> DistanceHistogram {
        self.hist
    }
}

/// Reference `O(M · B)` implementation: an explicit LRU stack of blocks.
pub struct NaiveStackDistance {
    granularity: u64,
    /// Stack, most recently used first.
    stack: Vec<u64>,
}

impl NaiveStackDistance {
    /// See [`StackDistanceAnalyzer::new`].
    pub fn new(granularity: u64) -> Self {
        assert!(granularity.is_power_of_two());
        NaiveStackDistance {
            granularity,
            stack: Vec::new(),
        }
    }

    /// Process one reference; returns the stack distance in blocks
    /// (`None` = cold).
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        let block = addr / self.granularity;
        match self.stack.iter().position(|&b| b == block) {
            Some(pos) => {
                self.stack.remove(pos);
                self.stack.insert(0, block);
                Some(pos as u64)
            }
            None => {
                self.stack.insert(0, block);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn simple_sequence() {
        // Blocks: A B A C B A D A (granularity 1 byte-block = 1)
        let mut an = StackDistanceAnalyzer::new(1);
        assert_eq!(an.access(0), None); // A cold
        assert_eq!(an.access(1), None); // B cold
        assert_eq!(an.access(0), Some(1)); // A: {B} in between
        assert_eq!(an.access(2), None); // C cold
        assert_eq!(an.access(1), Some(2)); // B: {A, C}
        assert_eq!(an.access(0), Some(2)); // A: {C, B}
        assert_eq!(an.access(3), None); // D cold
        assert_eq!(an.access(0), Some(1)); // A: {D}
        assert_eq!(an.unique_blocks(), 4);
    }

    #[test]
    fn repeated_same_block_distance_zero() {
        let mut an = StackDistanceAnalyzer::new(64);
        an.access(0);
        for _ in 0..10 {
            assert_eq!(an.access(32), Some(0)); // same 64-byte block as 0
        }
    }

    #[test]
    fn granularity_maps_addresses() {
        let mut an = StackDistanceAnalyzer::new(64);
        assert_eq!(an.access(0), None);
        assert_eq!(an.access(63), Some(0)); // same block
        assert_eq!(an.access(64), None); // next block
        assert_eq!(an.access(0), Some(1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_granularity() {
        StackDistanceAnalyzer::new(48);
    }

    #[test]
    fn matches_naive_on_random_trace() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut fast = StackDistanceAnalyzer::new(1);
        let mut slow = NaiveStackDistance::new(1);
        for _ in 0..20_000 {
            // Skewed toward small addresses for realistic reuse.
            let addr = (rng.gen::<f64>().powi(3) * 500.0) as u64;
            assert_eq!(fast.access(addr), slow.access(addr));
        }
    }

    #[test]
    fn matches_naive_across_compactions() {
        // Force many compactions with a tiny index space by driving more
        // references than INITIAL_SLOTS.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut fast = StackDistanceAnalyzer::new(1);
        let mut slow = NaiveStackDistance::new(1);
        for _ in 0..(StackDistanceAnalyzer::INITIAL_SLOTS * 3) {
            let addr = rng.gen_range(0u64..300);
            assert_eq!(fast.access(addr), slow.access(addr));
        }
    }

    #[test]
    fn sequential_scan_distances() {
        // A scan never reuses: all cold.
        let mut an = StackDistanceAnalyzer::new(1);
        for i in 0..1000u64 {
            assert_eq!(an.access(i), None);
        }
        // Second scan of the same data: every distance = unique − 1 = 999.
        for i in 0..1000u64 {
            assert_eq!(an.access(i), Some(999));
        }
    }

    #[test]
    fn histogram_totals_match() {
        let mut an = StackDistanceAnalyzer::new(1);
        for i in 0..100u64 {
            an.access(i % 10);
        }
        let h = an.histogram();
        assert_eq!(h.total_refs(), 100);
        assert_eq!(h.cold_refs(), 10);
    }
}
