//! Instruction/reference accounting: the paper's `ρ = M/(m+M)` (§3), where
//! `M` counts instructions that reference memory and `m` those that do not.

use serde::{Deserialize, Serialize};

/// Running counters over an instrumented execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Memory-referencing instructions (`M`): loads + stores.
    pub mem_refs: u64,
    /// Loads among `mem_refs`.
    pub reads: u64,
    /// Stores among `mem_refs`.
    pub writes: u64,
    /// Non-memory instructions (`m`): arithmetic, control, etc.
    pub compute: u64,
    /// Barrier operations executed.
    pub barriers: u64,
}

impl TraceStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a load.
    pub fn read(&mut self) {
        self.mem_refs += 1;
        self.reads += 1;
    }

    /// Record a store.
    pub fn write(&mut self) {
        self.mem_refs += 1;
        self.writes += 1;
    }

    /// Record `k` non-memory instructions.
    pub fn compute(&mut self, k: u64) {
        self.compute += k;
    }

    /// Record a barrier.
    pub fn barrier(&mut self) {
        self.barriers += 1;
    }

    /// Total instruction count `m + M`.
    pub fn total_instructions(&self) -> u64 {
        self.mem_refs + self.compute
    }

    /// The paper's `ρ = M/(m+M)`; 0 for an empty trace.
    pub fn rho(&self) -> f64 {
        let t = self.total_instructions();
        if t == 0 {
            0.0
        } else {
            self.mem_refs as f64 / t as f64
        }
    }

    /// Barriers per instruction (the model's barrier rate input).
    pub fn barrier_rate(&self) -> f64 {
        let t = self.total_instructions();
        if t == 0 {
            0.0
        } else {
            self.barriers as f64 / t as f64
        }
    }

    /// Write fraction of memory references (a proxy for invalidation
    /// pressure; informs the model's dirty fraction).
    pub fn write_fraction(&self) -> f64 {
        if self.mem_refs == 0 {
            0.0
        } else {
            self.writes as f64 / self.mem_refs as f64
        }
    }

    /// Merge counters from another process.
    pub fn merge(&mut self, other: &TraceStats) {
        self.mem_refs += other.mem_refs;
        self.reads += other.reads;
        self.writes += other.writes;
        self.compute += other.compute;
        self.barriers += other.barriers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_basic() {
        let mut s = TraceStats::new();
        for _ in 0..20 {
            s.read();
        }
        for _ in 0..10 {
            s.write();
        }
        s.compute(70);
        assert_eq!(s.total_instructions(), 100);
        assert!((s.rho() - 0.30).abs() < 1e-12);
        assert!((s.write_fraction() - 10.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_zero() {
        let s = TraceStats::new();
        assert_eq!(s.rho(), 0.0);
        assert_eq!(s.barrier_rate(), 0.0);
        assert_eq!(s.write_fraction(), 0.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = TraceStats::new();
        a.read();
        a.compute(4);
        let mut b = TraceStats::new();
        b.write();
        b.barrier();
        b.compute(4);
        a.merge(&b);
        assert_eq!(a.mem_refs, 2);
        assert_eq!(a.compute, 8);
        assert_eq!(a.barriers, 1);
        assert!((a.rho() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn barrier_rate() {
        let mut s = TraceStats::new();
        for _ in 0..10_000 {
            s.read();
        }
        s.barrier();
        assert!((s.barrier_rate() - 1e-4).abs() < 1e-12);
    }
}
