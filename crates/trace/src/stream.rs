//! Out-of-core streaming stack-distance analysis and online `(α, β)`
//! fitting.
//!
//! [`StreamAnalyzer`] wraps the exact in-memory analyzer behind a
//! chunk-oriented push interface whose resident state is bounded by
//! *live blocks* (the compaction bound), not trace length — traces far
//! larger than RAM stream through in fixed-size chunks with results
//! **identical at any chunk size**, because chunking is purely an I/O
//! batching choice.  Fit convergence is tracked by re-fitting at fixed
//! record milestones (4096 · 2ᵏ): milestones depend only on how many
//! records have flowed, so the [`FitReport`] — history included — is
//! byte-identical whether the trace arrived in 1 KiB chunks or whole.
//!
//! [`FitReport`]/[`FitRequest`] follow the workspace wire conventions
//! (`crates/cost/src/wire.rs`): `to_json → from_json` is a fixed point,
//! defaults are omitted on output and refilled on input, and unknown
//! keys are rejected.  The same pair backs `memhier fit --json` and
//! `memhierd`'s `POST /v1/fit` byte-for-byte.

use crate::fit::{fit_locality_checked, FitError};
use crate::format::{TraceError, TraceReader};
use crate::stackdist::StackDistanceAnalyzer;
use serde_json::{Number, Value};
use std::path::Path;

/// First fit milestone; subsequent milestones double.
pub const FIRST_MILESTONE: u64 = 4096;

/// Relative `α` movement between the last two fits below which the fit
/// is declared converged.
pub const ALPHA_TOL: f64 = 0.01;
/// Relative `β` movement between the last two fits below which the fit
/// is declared converged.
pub const BETA_TOL: f64 = 0.05;

/// Default analysis granularity in bytes (cache-line).
pub const DEFAULT_GRANULARITY: u64 = 64;
/// Default records per I/O chunk.
pub const DEFAULT_CHUNK_RECORDS: u64 = 65_536;

/// One entry of a fit's convergence history: the parameters refit after
/// `records` references had streamed through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitSnapshot {
    /// Records seen when this fit ran.
    pub records: u64,
    /// Fitted `α` at that point.
    pub alpha: f64,
    /// Fitted `β` at that point.
    pub beta: f64,
    /// Fit quality at that point.
    pub r_squared: f64,
}

/// The final product of the fitting pipeline: the paper's `(α, β, ρ)`
/// triple plus fit quality and the milestone history that shows whether
/// the parameters had stopped moving.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Fitted locality shape `α > 1`.
    pub alpha: f64,
    /// Fitted locality scale `β`, bytes.
    pub beta: f64,
    /// Memory-reference density `ρ` (0 when the trace carries no
    /// instruction count).
    pub rho: f64,
    /// Log-domain coefficient of determination of the final fit.
    pub r_squared: f64,
    /// Total address records analyzed.
    pub records: u64,
    /// Analysis granularity in bytes.
    pub granularity: u64,
    /// Whether the final fit moved less than ([`ALPHA_TOL`],
    /// [`BETA_TOL`]) relative to the last milestone fit.
    pub converged: bool,
    /// Milestone fits, oldest first (milestones whose fit was rejected
    /// as degenerate are absent).
    pub history: Vec<FitSnapshot>,
}

fn f64_value(v: f64) -> Value {
    Value::Number(Number::F64(v))
}

fn u64_value(v: u64) -> Value {
    Value::Number(Number::U64(v))
}

fn as_object<'a>(v: &'a Value, what: &'static str) -> Result<&'a [(String, Value)], TraceError> {
    match v {
        Value::Object(fields) => Ok(fields),
        _ => Err(TraceError::Syntax(format!("{what} must be a JSON object"))),
    }
}

fn req_f64(key: &'static str, v: &Value) -> Result<f64, TraceError> {
    v.as_f64()
        .ok_or_else(|| TraceError::Invalid(key, "expected a number".to_string()))
}

fn req_u64(key: &'static str, v: &Value) -> Result<u64, TraceError> {
    v.as_u64()
        .ok_or_else(|| TraceError::Invalid(key, "expected a non-negative integer".to_string()))
}

fn req_bool(key: &'static str, v: &Value) -> Result<bool, TraceError> {
    v.as_bool()
        .ok_or_else(|| TraceError::Invalid(key, "expected a boolean".to_string()))
}

impl FitSnapshot {
    /// JSON form (all fields present; snapshots have no defaults).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("records".to_string(), u64_value(self.records)),
            ("alpha".to_string(), f64_value(self.alpha)),
            ("beta".to_string(), f64_value(self.beta)),
            ("r2".to_string(), f64_value(self.r_squared)),
        ])
    }

    /// Parse the [`to_json`](FitSnapshot::to_json) form back; unknown
    /// keys are rejected.
    pub fn from_json(v: &Value) -> Result<FitSnapshot, TraceError> {
        let mut records = None;
        let mut alpha = None;
        let mut beta = None;
        let mut r2 = None;
        for (key, val) in as_object(v, "history entry")? {
            match key.as_str() {
                "records" => records = Some(req_u64("records", val)?),
                "alpha" => alpha = Some(req_f64("alpha", val)?),
                "beta" => beta = Some(req_f64("beta", val)?),
                "r2" => r2 = Some(req_f64("r2", val)?),
                other => return Err(TraceError::UnknownField(other.to_string())),
            }
        }
        Ok(FitSnapshot {
            records: records.ok_or(TraceError::Missing("records"))?,
            alpha: alpha.ok_or(TraceError::Missing("alpha"))?,
            beta: beta.ok_or(TraceError::Missing("beta"))?,
            r_squared: r2.ok_or(TraceError::Missing("r2"))?,
        })
    }
}

impl FitReport {
    /// JSON form; an empty history is omitted.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("alpha".to_string(), f64_value(self.alpha)),
            ("beta".to_string(), f64_value(self.beta)),
            ("rho".to_string(), f64_value(self.rho)),
            ("r2".to_string(), f64_value(self.r_squared)),
            ("records".to_string(), u64_value(self.records)),
            ("granularity".to_string(), u64_value(self.granularity)),
            ("converged".to_string(), Value::Bool(self.converged)),
        ];
        if !self.history.is_empty() {
            fields.push((
                "history".to_string(),
                Value::Array(self.history.iter().map(|s| s.to_json()).collect()),
            ));
        }
        Value::Object(fields)
    }

    /// Parse the [`to_json`](FitReport::to_json) form back (fixed
    /// point); unknown keys are rejected.
    pub fn from_json(v: &Value) -> Result<FitReport, TraceError> {
        let mut alpha = None;
        let mut beta = None;
        let mut rho = None;
        let mut r2 = None;
        let mut records = None;
        let mut granularity = None;
        let mut converged = None;
        let mut history = Vec::new();
        for (key, val) in as_object(v, "fit report")? {
            match key.as_str() {
                "alpha" => alpha = Some(req_f64("alpha", val)?),
                "beta" => beta = Some(req_f64("beta", val)?),
                "rho" => rho = Some(req_f64("rho", val)?),
                "r2" => r2 = Some(req_f64("r2", val)?),
                "records" => records = Some(req_u64("records", val)?),
                "granularity" => granularity = Some(req_u64("granularity", val)?),
                "converged" => converged = Some(req_bool("converged", val)?),
                "history" => match val {
                    Value::Array(items) => {
                        history = items
                            .iter()
                            .map(FitSnapshot::from_json)
                            .collect::<Result<_, _>>()?;
                    }
                    _ => {
                        return Err(TraceError::Invalid(
                            "history",
                            "expected an array".to_string(),
                        ))
                    }
                },
                other => return Err(TraceError::UnknownField(other.to_string())),
            }
        }
        Ok(FitReport {
            alpha: alpha.ok_or(TraceError::Missing("alpha"))?,
            beta: beta.ok_or(TraceError::Missing("beta"))?,
            rho: rho.ok_or(TraceError::Missing("rho"))?,
            r_squared: r2.ok_or(TraceError::Missing("r2"))?,
            records: records.ok_or(TraceError::Missing("records"))?,
            granularity: granularity.ok_or(TraceError::Missing("granularity"))?,
            converged: converged.ok_or(TraceError::Missing("converged"))?,
            history,
        })
    }
}

/// A fit request: which trace to analyze and how.  Backs both `memhier
/// fit --trace` and `POST /v1/fit` (the service resolves `trace`
/// against its own filesystem).
#[derive(Debug, Clone, PartialEq)]
pub struct FitRequest {
    /// Path of the `.mtr` trace file.
    pub trace: String,
    /// Analysis granularity in bytes (power of two).
    pub granularity: u64,
    /// Records per I/O chunk — a memory/latency knob only; results are
    /// identical for every value.
    pub chunk_records: u64,
}

impl FitRequest {
    /// A request for `trace` with default granularity and chunking.
    pub fn new(trace: impl Into<String>) -> Self {
        FitRequest {
            trace: trace.into(),
            granularity: DEFAULT_GRANULARITY,
            chunk_records: DEFAULT_CHUNK_RECORDS,
        }
    }

    /// JSON form; defaulted fields are omitted.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![("trace".to_string(), Value::String(self.trace.clone()))];
        if self.granularity != DEFAULT_GRANULARITY {
            fields.push(("granularity".to_string(), u64_value(self.granularity)));
        }
        if self.chunk_records != DEFAULT_CHUNK_RECORDS {
            fields.push(("chunk_records".to_string(), u64_value(self.chunk_records)));
        }
        Value::Object(fields)
    }

    /// Parse the [`to_json`](FitRequest::to_json) form back (fixed
    /// point), validating field values; unknown keys are rejected.
    pub fn from_json(v: &Value) -> Result<FitRequest, TraceError> {
        let mut trace = None;
        let mut granularity = DEFAULT_GRANULARITY;
        let mut chunk_records = DEFAULT_CHUNK_RECORDS;
        for (key, val) in as_object(v, "fit request")? {
            match key.as_str() {
                "trace" => match val {
                    Value::String(s) => trace = Some(s.clone()),
                    _ => {
                        return Err(TraceError::Invalid(
                            "trace",
                            "expected a file path string".to_string(),
                        ))
                    }
                },
                "granularity" => granularity = req_u64("granularity", val)?,
                "chunk_records" => chunk_records = req_u64("chunk_records", val)?,
                other => return Err(TraceError::UnknownField(other.to_string())),
            }
        }
        if !granularity.is_power_of_two() {
            return Err(TraceError::Invalid(
                "granularity",
                format!("{granularity} is not a power of two"),
            ));
        }
        if chunk_records == 0 {
            return Err(TraceError::Invalid(
                "chunk_records",
                "must be at least 1".to_string(),
            ));
        }
        Ok(FitRequest {
            trace: trace.ok_or(TraceError::Missing("trace"))?,
            granularity,
            chunk_records,
        })
    }
}

/// Streaming stack-distance + online-fit engine.
///
/// Push addresses (singly or in chunks of any size), then
/// [`finish`](StreamAnalyzer::finish) for the [`FitReport`].  State is
/// `O(live blocks)`; [`peak_state_bytes`](StreamAnalyzer::peak_state_bytes)
/// exposes the high-water mark so tests can assert the bound instead of
/// hoping for it.
pub struct StreamAnalyzer {
    an: StackDistanceAnalyzer,
    records: u64,
    next_milestone: u64,
    history: Vec<FitSnapshot>,
    peak_state: u64,
}

impl StreamAnalyzer {
    /// New analyzer at `granularity`-byte blocks (power of two).
    pub fn new(granularity: u64) -> Self {
        StreamAnalyzer {
            an: StackDistanceAnalyzer::new(granularity),
            records: 0,
            next_milestone: FIRST_MILESTONE,
            history: Vec::new(),
            peak_state: 0,
        }
    }

    /// Feed one address.
    pub fn push(&mut self, addr: u64) {
        self.an.access(addr);
        self.records += 1;
        if self.records == self.next_milestone {
            self.snapshot();
            self.next_milestone *= 2;
        }
        let state = self.an.state_bytes();
        if state > self.peak_state {
            self.peak_state = state;
        }
    }

    /// Feed a chunk of addresses.  Chunk boundaries carry no meaning:
    /// any partition of the same stream produces the same state, the
    /// same history, and the same final report.
    pub fn push_chunk(&mut self, addrs: &[u64]) {
        for &a in addrs {
            self.push(a);
        }
    }

    /// Records pushed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Current resident analysis state in bytes.
    pub fn state_bytes(&self) -> u64 {
        self.an.state_bytes()
    }

    /// High-water mark of [`state_bytes`](StreamAnalyzer::state_bytes).
    pub fn peak_state_bytes(&self) -> u64 {
        self.peak_state
    }

    /// Distinct blocks seen.
    pub fn unique_blocks(&self) -> u32 {
        self.an.unique_blocks()
    }

    /// Milestone fits collected so far.
    pub fn history(&self) -> &[FitSnapshot] {
        &self.history
    }

    fn snapshot(&mut self) {
        if let Ok(fit) = fit_locality_checked(&self.an.histogram().cdf_points()) {
            self.history.push(FitSnapshot {
                records: self.records,
                alpha: fit.alpha,
                beta: fit.beta,
                r_squared: fit.r_squared,
            });
        }
    }

    /// Run the final fit and assemble the report.  `total_instructions`
    /// (memory + compute) yields `ρ = records / total_instructions`; 0
    /// means unknown and reports `ρ = 0`.
    pub fn finish(self, total_instructions: u64) -> Result<FitReport, FitError> {
        let records = self.records;
        let history = self.history;
        let granularity = self.an.granularity();
        let fit = fit_locality_checked(&self.an.into_histogram().cdf_points())?;
        let converged = history.last().is_some_and(|last| {
            let da = (fit.alpha - last.alpha).abs() / fit.alpha.abs().max(f64::MIN_POSITIVE);
            let db = (fit.beta - last.beta).abs() / fit.beta.abs().max(f64::MIN_POSITIVE);
            da < ALPHA_TOL && db < BETA_TOL
        });
        let rho = if total_instructions > 0 {
            records as f64 / total_instructions as f64
        } else {
            0.0
        };
        Ok(FitReport {
            alpha: fit.alpha,
            beta: fit.beta,
            rho,
            r_squared: fit.r_squared,
            records,
            granularity,
            converged,
            history,
        })
    }
}

/// Execute a [`FitRequest`]: stream the trace file through a
/// [`StreamAnalyzer`] in `chunk_records`-sized chunks and return the
/// report.  The whole trace is never resident; peak memory is the chunk
/// buffer plus the compaction-bounded analysis state.
pub fn run_fit(req: &FitRequest) -> Result<FitReport, TraceError> {
    let mut reader = TraceReader::open(Path::new(&req.trace))?;
    let total_instructions = reader.header().total_instructions;
    let mut analyzer = StreamAnalyzer::new(req.granularity);
    // Cap the chunk buffer allocation independently of the request knob.
    let cap = req.chunk_records.min(1 << 20) as usize;
    let mut chunk: Vec<u64> = Vec::with_capacity(cap);
    loop {
        chunk.clear();
        while (chunk.len() as u64) < req.chunk_records {
            match reader.next_record()? {
                Some(addr) => chunk.push(addr),
                None => break,
            }
        }
        if chunk.is_empty() {
            break;
        }
        analyzer.push_chunk(&chunk);
    }
    Ok(analyzer.finish(total_instructions)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTrace;

    fn synthetic_addrs(n: usize) -> Vec<u64> {
        SyntheticTrace::new(1.3, 90.0, 64, 7).take(n).collect()
    }

    #[test]
    fn chunking_is_invisible() {
        let addrs = synthetic_addrs(30_000);
        let mut whole = StreamAnalyzer::new(64);
        whole.push_chunk(&addrs);
        for chunk_size in [1usize, 128, 4096, 10_000] {
            let mut chunked = StreamAnalyzer::new(64);
            for c in addrs.chunks(chunk_size) {
                chunked.push_chunk(c);
            }
            assert_eq!(chunked.history(), whole.history(), "chunk {chunk_size}");
            assert_eq!(chunked.records(), whole.records());
            assert_eq!(chunked.state_bytes(), whole.state_bytes());
        }
        let a = whole.finish(60_000).unwrap();
        let mut again = StreamAnalyzer::new(64);
        for c in addrs.chunks(333) {
            again.push_chunk(c);
        }
        assert_eq!(again.finish(60_000).unwrap(), a);
    }

    #[test]
    fn milestones_double_from_4096() {
        let addrs = synthetic_addrs(40_000);
        let mut an = StreamAnalyzer::new(64);
        an.push_chunk(&addrs);
        let recs: Vec<u64> = an.history().iter().map(|s| s.records).collect();
        for r in &recs {
            assert!(r.is_power_of_two() && *r >= FIRST_MILESTONE, "{recs:?}");
        }
        assert!(recs.windows(2).all(|w| w[1] == w[0] * 2), "{recs:?}");
    }

    #[test]
    fn converges_on_stationary_stream() {
        let addrs = synthetic_addrs(300_000);
        let mut an = StreamAnalyzer::new(64);
        an.push_chunk(&addrs);
        let report = an.finish(600_000).unwrap();
        assert!(report.converged, "history: {:?}", report.history);
        assert_eq!(report.records, 300_000);
        assert!((report.rho - 0.5).abs() < 1e-12);
        assert!(report.alpha > 1.0 && report.beta > 0.0);
    }

    #[test]
    fn short_stream_not_converged() {
        // Below the first milestone there is no history to compare with.
        let addrs = synthetic_addrs(1000);
        let mut an = StreamAnalyzer::new(64);
        an.push_chunk(&addrs);
        let report = an.finish(2000).unwrap();
        assert!(!report.converged);
        assert!(report.history.is_empty());
    }

    #[test]
    fn report_json_fixed_point() {
        let addrs = synthetic_addrs(50_000);
        let mut an = StreamAnalyzer::new(64);
        an.push_chunk(&addrs);
        let report = an.finish(100_000).unwrap();
        let v = report.to_json();
        let back = FitReport::from_json(&v).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), v);
    }

    #[test]
    fn report_json_rejects_typos() {
        let addrs = synthetic_addrs(10_000);
        let mut an = StreamAnalyzer::new(64);
        an.push_chunk(&addrs);
        let mut v = an.finish(0).unwrap().to_json();
        if let Value::Object(fields) = &mut v {
            fields.push(("alpa".to_string(), f64_value(1.0)));
        }
        assert!(matches!(
            FitReport::from_json(&v).unwrap_err(),
            TraceError::UnknownField(k) if k == "alpa"
        ));
    }

    #[test]
    fn request_json_fixed_point_and_validation() {
        let req = FitRequest::new("a.mtr");
        let v = req.to_json();
        // Defaults omitted.
        assert_eq!(
            v,
            Value::Object(vec![(
                "trace".to_string(),
                Value::String("a.mtr".to_string()),
            )])
        );
        assert_eq!(FitRequest::from_json(&v).unwrap(), req);

        let custom = FitRequest {
            trace: "b.mtr".to_string(),
            granularity: 4,
            chunk_records: 100,
        };
        assert_eq!(FitRequest::from_json(&custom.to_json()).unwrap(), custom);

        let bad = serde_json::from_str::<Value>(r#"{"trace": "x", "granularity": 48}"#).unwrap();
        assert!(matches!(
            FitRequest::from_json(&bad).unwrap_err(),
            TraceError::Invalid("granularity", _)
        ));
        let bad = serde_json::from_str::<Value>(r#"{"trace": "x", "chunk_records": 0}"#).unwrap();
        assert!(matches!(
            FitRequest::from_json(&bad).unwrap_err(),
            TraceError::Invalid("chunk_records", _)
        ));
        let bad = serde_json::from_str::<Value>(r#"{}"#).unwrap();
        assert!(matches!(
            FitRequest::from_json(&bad).unwrap_err(),
            TraceError::Missing("trace")
        ));
    }

    #[test]
    fn empty_stream_is_typed_error() {
        let an = StreamAnalyzer::new(64);
        assert!(matches!(
            an.finish(0),
            Err(FitError::TooFewPoints { usable: 0 })
        ));
    }

    #[test]
    fn footprint_capped_stream_has_bounded_state() {
        // 4× the records must not grow the resident state when the
        // working set is capped: state scales with live blocks only.
        // A 16 KiB footprint (256 blocks) saturates within ~2k records,
        // long before either run ends.
        let gen = |n: usize| {
            SyntheticTrace::new(1.3, 90.0, 64, 9)
                .with_footprint((1u64 << 14) as f64)
                .take(n)
                .collect::<Vec<u64>>()
        };
        let mut small = StreamAnalyzer::new(64);
        small.push_chunk(&gen(20_000));
        let mut large = StreamAnalyzer::new(64);
        large.push_chunk(&gen(80_000));
        assert_eq!(
            small.peak_state_bytes(),
            large.peak_state_bytes(),
            "state grew with trace length"
        );
    }
}
