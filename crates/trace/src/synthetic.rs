//! Synthetic address streams with a prescribed stack-distance distribution.
//!
//! The classic LRU-stack generator: keep an explicit LRU stack of blocks;
//! for each reference draw a stack distance `d` from the model density
//! `p(x)` by inverse-CDF sampling, reference the block at depth `d` (which
//! moves it to the top), or a brand-new block when `d` falls beyond the
//! current stack.  By construction the emitted stream's stack-distance
//! distribution converges to `P(x) = 1 − (x/β + 1)^−(α−1)`.
//!
//! Used for (a) property-testing the analyzer/fitter round-trip and (b) the
//! controlled model-vs-simulation experiments, where each SPMD process
//! emits a stream with the fitted `(α, β)` of a real kernel (DESIGN.md
//! substitution 1).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic synthetic trace generator (seeded ChaCha8).
pub struct SyntheticTrace {
    alpha: f64,
    beta: f64,
    granularity: u64,
    rng: ChaCha8Rng,
    /// LRU stack of block ids, most recent first.
    stack: Vec<u64>,
    next_block: u64,
    /// Optional cap on distinct blocks (the working-set footprint in
    /// blocks); draws beyond it wrap to the stack bottom.
    max_blocks: Option<u64>,
}

impl SyntheticTrace {
    /// New generator targeting `(α, β)` with `granularity`-byte blocks.
    ///
    /// `β` here is denominated in **bytes** (as everywhere in the model);
    /// internally it is converted to blocks.
    pub fn new(alpha: f64, beta: f64, granularity: u64, seed: u64) -> Self {
        assert!(alpha > 1.0 && beta > 0.0);
        assert!(granularity.is_power_of_two());
        SyntheticTrace {
            alpha,
            beta: beta / granularity as f64,
            granularity,
            rng: ChaCha8Rng::seed_from_u64(seed),
            stack: Vec::new(),
            next_block: 0,
            max_blocks: None,
        }
    }

    /// Cap the number of distinct blocks (footprint in bytes).
    pub fn with_footprint(mut self, bytes: f64) -> Self {
        self.max_blocks = Some((bytes / self.granularity as f64).max(1.0) as u64);
        self
    }

    /// Offset block ids so several generators produce disjoint address
    /// ranges (per-process partitions).
    pub fn with_base_block(mut self, base: u64) -> Self {
        assert!(self.stack.is_empty(), "set the base before generating");
        self.next_block = base;
        self
    }

    /// Inverse-CDF sample of a stack distance in blocks:
    /// `d = β·((1−u)^{−1/(α−1)} − 1)`.
    fn draw_distance(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let d = self.beta * ((1.0 - u).powf(-1.0 / (self.alpha - 1.0)) - 1.0);
        // Clamp absurd tail draws so a single sample cannot overflow.
        d.min(1e18) as u64
    }

    /// Produce the next byte address of the stream.
    pub fn next_address(&mut self) -> u64 {
        let d = self.draw_distance() as usize;
        let block = if d < self.stack.len() {
            // Reuse the block at depth d (0 = most recent).
            let b = self.stack.remove(d);
            self.stack.insert(0, b);
            b
        } else if self
            .max_blocks
            .map(|m| (self.stack.len() as u64) >= m)
            .unwrap_or(false)
        {
            // Footprint exhausted: touch the coldest block instead.
            let b = self.stack.pop().expect("stack nonempty at footprint cap");
            self.stack.insert(0, b);
            b
        } else {
            // New block.
            let b = self.next_block;
            self.next_block += 1;
            self.stack.insert(0, b);
            b
        };
        block * self.granularity
    }

    /// Number of distinct blocks emitted so far.
    pub fn unique_blocks(&self) -> usize {
        self.stack.len()
    }
}

impl Iterator for SyntheticTrace {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        Some(self.next_address())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stackdist::StackDistanceAnalyzer;

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<u64> = SyntheticTrace::new(1.3, 90.0, 64, 7).take(1000).collect();
        let b: Vec<u64> = SyntheticTrace::new(1.3, 90.0, 64, 7).take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = SyntheticTrace::new(1.3, 90.0, 64, 8).take(1000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_are_block_aligned() {
        for addr in SyntheticTrace::new(1.3, 90.0, 64, 1).take(500) {
            assert_eq!(addr % 64, 0);
        }
    }

    #[test]
    fn footprint_cap_respected() {
        let mut g = SyntheticTrace::new(1.1, 500.0, 1, 3).with_footprint(100.0);
        for _ in 0..50_000 {
            g.next_address();
        }
        assert!(g.unique_blocks() <= 100, "{} blocks", g.unique_blocks());
    }

    #[test]
    fn base_block_separates_streams() {
        let a: Vec<u64> = SyntheticTrace::new(1.3, 90.0, 1, 1)
            .with_base_block(0)
            .take(2000)
            .collect();
        let b: Vec<u64> = SyntheticTrace::new(1.3, 90.0, 1, 1)
            .with_base_block(1 << 32)
            .take(2000)
            .collect();
        let max_a = a.iter().max().unwrap();
        let min_b = b.iter().min().unwrap();
        assert!(max_a < min_b);
    }

    #[test]
    fn measured_distribution_tracks_target() {
        // Empirical tail at a few capacities vs the model tail.
        let (alpha, beta) = (1.3f64, 200.0f64);
        let mut g = SyntheticTrace::new(alpha, beta, 1, 99);
        let mut an = StackDistanceAnalyzer::new(1);
        for _ in 0..300_000 {
            an.access(g.next_address());
        }
        let h = an.histogram();
        for &s in &[100.0f64, 1000.0, 10_000.0] {
            let target = (s / beta + 1.0).powf(-(alpha - 1.0));
            let got = h.tail_at(s);
            assert!(
                (got - target).abs() < 0.05,
                "tail at {s}: measured {got}, target {target}"
            );
        }
    }

    #[test]
    fn better_locality_means_fewer_unique_blocks() {
        let mut tight = SyntheticTrace::new(1.7, 50.0, 1, 5);
        let mut loose = SyntheticTrace::new(1.1, 200.0, 1, 5);
        for _ in 0..50_000 {
            tight.next_address();
            loose.next_address();
        }
        assert!(tight.unique_blocks() < loose.unique_blocks());
    }
}
