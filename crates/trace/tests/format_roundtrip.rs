//! Property-based tests of the `.mtr` binary trace format: lossless
//! round-trips for arbitrary address streams at arbitrary block sizes,
//! deterministic encoding, and rejection of truncated or bit-flipped
//! files.  Every payload byte is CRC-guarded and every record count is
//! cross-checked, so *any* single-byte corruption must surface as a
//! typed [`TraceError`], never as silently wrong addresses.

use memhier_trace::{TraceError, TraceReader, TraceWriter};
use proptest::prelude::*;
use std::io::Cursor;

/// Encode `addrs` into an in-memory `.mtr` image.
fn encode(addrs: &[u64], block_payload: usize, granularity: u64, ti: u64) -> Vec<u8> {
    let mut cur = Cursor::new(Vec::new());
    {
        let mut w = TraceWriter::new(&mut cur, granularity)
            .unwrap()
            .with_block_payload(block_payload);
        for &a in addrs {
            w.record(a).unwrap();
        }
        w.finish(ti).unwrap();
    }
    cur.into_inner()
}

/// Decode every record, panicking on any mid-stream error.
fn decode(bytes: &[u8]) -> Vec<u64> {
    TraceReader::new(Cursor::new(bytes))
        .unwrap()
        .map(|r| r.unwrap())
        .collect()
}

/// Drain a reader until clean EOF or the first error, returning the
/// records seen and whether an error occurred.
fn drain(bytes: &[u8]) -> (Vec<u64>, Option<TraceError>) {
    let mut reader = match TraceReader::new(Cursor::new(bytes)) {
        Ok(r) => r,
        Err(e) => return (Vec::new(), Some(e)),
    };
    let mut seen = Vec::new();
    loop {
        match reader.next_record() {
            Ok(Some(a)) => seen.push(a),
            Ok(None) => return (seen, None),
            Err(e) => return (seen, Some(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_lossless_at_any_block_size(
        addrs in proptest::collection::vec(0u64..u64::MAX, 0..2000),
        block_payload in 10usize..4096,
        ti in 0u64..1_000_000,
    ) {
        let bytes = encode(&addrs, block_payload, 64, ti);
        let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        prop_assert_eq!(reader.header().record_count, addrs.len() as u64);
        prop_assert_eq!(reader.header().total_instructions, ti);
        prop_assert_eq!(reader.header().granularity, 64);
        prop_assert_eq!(decode(&bytes), addrs);
    }

    #[test]
    fn encoding_is_deterministic(
        addrs in proptest::collection::vec(0u64..u64::MAX, 0..800),
        block_payload in 10usize..1024,
    ) {
        let a = encode(&addrs, block_payload, 1, 7);
        let b = encode(&addrs, block_payload, 1, 7);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn block_size_never_changes_decoded_records(
        addrs in proptest::collection::vec(0u64..u64::MAX, 1..600),
    ) {
        // The block layout is a transport detail; the record stream is
        // identical whether one block holds the trace or dozens do.
        let whole = decode(&encode(&addrs, 1 << 20, 1, 0));
        for payload in [10usize, 64, 700] {
            prop_assert_eq!(&decode(&encode(&addrs, payload, 1, 0)), &whole);
        }
        prop_assert_eq!(whole, addrs);
    }

    #[test]
    fn truncation_anywhere_is_rejected(
        addrs in proptest::collection::vec(0u64..u64::MAX, 1..400),
        block_payload in 10usize..256,
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode(&addrs, block_payload, 1, 9);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let (seen, err) = drain(&bytes[..cut]);
        prop_assert!(
            err.is_some(),
            "cut at {cut}/{} decoded cleanly: {} records",
            bytes.len(),
            seen.len()
        );
        // Whatever was decoded before the error is a true prefix.
        prop_assert!(seen.len() <= addrs.len());
        prop_assert_eq!(&seen[..], &addrs[..seen.len()]);
    }

    #[test]
    fn single_byte_corruption_is_rejected(
        addrs in proptest::collection::vec(0u64..u64::MAX, 1..400),
        block_payload in 10usize..256,
        pos_frac in 0.0f64..1.0,
        flip in 1u64..256,
    ) {
        let mut bytes = encode(&addrs, block_payload, 1, 9);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip as u8;
        let (seen, err) = drain(&bytes);
        prop_assert!(
            err.is_some(),
            "flipping byte {pos} with {flip:#04x} went unnoticed \
             ({} records decoded)",
            seen.len()
        );
        // Records decoded before the corrupted block are untouched.
        prop_assert!(seen.len() <= addrs.len());
        prop_assert_eq!(&seen[..], &addrs[..seen.len()]);
    }
}
