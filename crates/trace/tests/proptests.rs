//! Property-based tests of the trace-analysis substrate.

use memhier_trace::{
    fit_locality, DistanceHistogram, NaiveStackDistance, StackDistanceAnalyzer, SyntheticTrace,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fenwick_equals_naive_reference(
        trace in proptest::collection::vec(0u64..200, 1..800),
        granularity in prop_oneof![Just(1u64), Just(8), Just(64)],
    ) {
        let mut fast = StackDistanceAnalyzer::new(granularity);
        let mut slow = NaiveStackDistance::new(granularity);
        for &a in &trace {
            prop_assert_eq!(fast.access(a), slow.access(a));
        }
    }

    #[test]
    fn distances_bounded_by_unique_blocks(
        trace in proptest::collection::vec(0u64..500, 1..1000),
    ) {
        let mut an = StackDistanceAnalyzer::new(1);
        for &a in &trace {
            if let Some(d) = an.access(a) {
                prop_assert!(d < an.unique_blocks() as u64);
            }
        }
    }

    #[test]
    fn histogram_totals_match_trace_length(
        trace in proptest::collection::vec(0u64..300, 1..600),
    ) {
        let mut an = StackDistanceAnalyzer::new(1);
        for &a in &trace {
            an.access(a);
        }
        let h = an.histogram();
        prop_assert_eq!(h.total_refs(), trace.len() as u64);
        prop_assert_eq!(h.cold_refs() as usize, {
            let mut seen = std::collections::HashSet::new();
            trace.iter().filter(|&&a| seen.insert(a)).count()
        });
    }

    #[test]
    fn cdf_points_valid(
        distances in proptest::collection::vec(0u64..1_000_000, 1..500),
        cold in 0u64..50,
    ) {
        let mut h = DistanceHistogram::new(64);
        for &d in &distances {
            h.record(Some(d));
        }
        for _ in 0..cold {
            h.record(None);
        }
        let cdf = h.cdf_points();
        let mut prev_x = 0.0;
        let mut prev_p = 0.0;
        for &(x, p) in &cdf {
            prop_assert!(x > prev_x);
            prop_assert!(p >= prev_p && p <= 1.0 + 1e-12);
            prev_x = x;
            prev_p = p;
        }
        // Last cumulative point accounts for all finite-distance refs.
        let expect = distances.len() as f64 / (distances.len() as u64 + cold) as f64;
        prop_assert!((prev_p - expect).abs() < 1e-9);
    }

    #[test]
    fn tail_at_is_monotone_decreasing(
        distances in proptest::collection::vec(0u64..100_000, 10..300),
        x1 in 1.0f64..1e6,
        dx in 0.0f64..1e6,
    ) {
        let mut h = DistanceHistogram::new(1);
        for &d in &distances {
            h.record(Some(d));
        }
        prop_assert!(h.tail_at(x1 + dx) <= h.tail_at(x1) + 1e-12);
    }

    #[test]
    fn fit_recovers_synthetic_parameters(
        alpha in 1.15f64..2.0,
        beta_exp in 4.0f64..9.0,
        seed in 0u64..1000,
    ) {
        // β from ~16 bytes to ~512 bytes (in block units of 1 at
        // granularity 1 this is the distance scale).
        let beta = beta_exp.exp2();
        let mut g = SyntheticTrace::new(alpha, beta, 1, seed);
        let mut an = StackDistanceAnalyzer::new(1);
        for _ in 0..60_000 {
            an.access(g.next_address());
        }
        let fit = fit_locality(&an.histogram().cdf_points()).unwrap();
        // Statistical recovery at modest sample size: generous bands.
        prop_assert!((fit.alpha - alpha).abs() < 0.35, "alpha {} vs {alpha}", fit.alpha);
        prop_assert!(
            (fit.beta / beta).ln().abs() < 1.2,
            "beta {} vs {beta}", fit.beta
        );
    }

    #[test]
    fn merge_is_commutative_in_totals(
        a in proptest::collection::vec(0u64..1000, 1..200),
        b in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let hist_of = |v: &[u64]| {
            let mut an = StackDistanceAnalyzer::new(1);
            for &x in v {
                an.access(x);
            }
            an.into_histogram()
        };
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab.total_refs(), ba.total_refs());
        prop_assert_eq!(ab.cold_refs(), ba.cold_refs());
        // Full histograms are equal as distributions.
        prop_assert_eq!(ab.cdf_points(), ba.cdf_points());
    }

    #[test]
    fn synthetic_trace_respects_granularity_and_footprint(
        granularity in prop_oneof![Just(8u64), Just(64), Just(256)],
        footprint_blocks in 16u64..256,
    ) {
        let mut g = SyntheticTrace::new(1.3, 500.0, granularity, 5)
            .with_footprint((footprint_blocks * granularity) as f64);
        let mut max_block = 0u64;
        for _ in 0..5000 {
            let a = g.next_address();
            prop_assert_eq!(a % granularity, 0);
            max_block = max_block.max(a / granularity);
        }
        prop_assert!(max_block < footprint_blocks);
    }
}

// ---------------------------------------------------------------------
// Differential test across the analyzer's slot-compaction boundary.
//
// `StackDistanceAnalyzer` appends one slot per access to a fixed-width
// Fenwick tree and *compacts* (rebuilds the slot array and re-indexes
// every live block) each time the 2^16-slot window fills.  A bookkeeping
// bug there — a stale Fenwick count, a wrong slot remap — is invisible
// to short traces and only materializes after the first compaction.
// These tests drive interleaved reuse well past two compactions and
// demand exact agreement with the O(M·B) naive LRU stack.

/// Mirrors the private `StackDistanceAnalyzer::INITIAL_SLOTS`.
const INITIAL_SLOTS: usize = 1 << 16;

/// Deterministic reuse-heavy stream: a hot set revisited constantly
/// (small distances), a warm half-range, and a full-range scatter, with
/// a phase shift halfway through so pre-compaction blocks are re-touched
/// after their slots have been rebuilt.
fn interleaved_trace(seed: u64, blocks: u64, refs: usize, granularity: u64) -> Vec<u64> {
    assert!(blocks >= 64);
    let mut out = Vec::with_capacity(refs);
    let mut state = seed | 1;
    for i in 0..refs {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = state >> 33;
        let phase = if i < refs / 2 { 0 } else { blocks / 2 };
        let block = match r % 10 {
            // Hot set of 16 blocks; moves at the halfway phase shift.
            0..=5 => (r / 16) % 16 + phase,
            // Warm half-range, phase-shifted too.
            6..=8 => r % (blocks / 2) + phase,
            // Cold full-range scatter (long distances, new blocks).
            _ => r % blocks,
        };
        // Off-alignment addresses exercise the block rounding.
        out.push(block * granularity + (r % granularity));
    }
    out
}

proptest! {
    // The naive reference is O(M·B); three cases keep this under control
    // while still varying seed and granularity across runs.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn fenwick_equals_naive_past_two_compactions(
        seed in 1u64..1_000_000,
        granularity in prop_oneof![Just(1u64), Just(64)],
    ) {
        // 2.25 * INITIAL_SLOTS references => two compactions, plus a
        // tail that reuses post-compaction state.
        let refs = 2 * INITIAL_SLOTS + INITIAL_SLOTS / 4;
        let trace = interleaved_trace(seed, 240, refs, granularity);
        let mut fast = StackDistanceAnalyzer::new(granularity);
        let mut slow = NaiveStackDistance::new(granularity);
        for (i, &a) in trace.iter().enumerate() {
            let f = fast.access(a);
            let s = slow.access(a);
            prop_assert_eq!(
                f, s,
                "fenwick diverged from naive at ref {} of {} (addr {:#x})",
                i, refs, a
            );
        }
        // Aggregates agree with an independent count of the trace.
        let unique = {
            let mut seen = std::collections::HashSet::new();
            trace.iter().filter(|&&a| seen.insert(a / granularity)).count()
        };
        prop_assert_eq!(fast.unique_blocks() as usize, unique);
        let h = fast.histogram();
        prop_assert_eq!(h.total_refs(), refs as u64);
        prop_assert_eq!(h.cold_refs(), unique as u64);
    }

    #[test]
    fn compaction_is_invisible_to_the_histogram(seed in 1u64..1_000_000) {
        // The same stream fed to one analyzer that compacts (long run)
        // and, in two halves, to fresh analyzers that don't, must agree
        // on every per-reference distance of the first half — compaction
        // must never perturb already-recorded state.
        let refs = INITIAL_SLOTS + INITIAL_SLOTS / 2;
        let trace = interleaved_trace(seed, 150, refs, 64);
        let mut whole = StackDistanceAnalyzer::new(64);
        let mut prefix = StackDistanceAnalyzer::new(64);
        let cut = INITIAL_SLOTS / 2; // well before the first compaction
        for (i, &a) in trace.iter().enumerate() {
            let w = whole.access(a);
            if i < cut {
                prop_assert_eq!(w, prefix.access(a));
            }
        }
        prop_assert_eq!(whole.histogram().total_refs(), refs as u64);
    }
}
