//! Differential and resource-bound tests of the out-of-core streaming
//! pipeline: the streaming engine must agree **exactly** (same f64 bits)
//! with the in-memory analyzer on any stream, at any chunk size, and its
//! resident state must stay bounded however long the trace grows.  A
//! golden fixture pins the `FitReport` wire schema byte-for-byte.

use memhier_trace::{
    fit_locality_checked, run_fit, FitReport, FitRequest, StackDistanceAnalyzer, StreamAnalyzer,
    SyntheticTrace, TraceWriter,
};
use std::fs;
use std::path::PathBuf;

/// Deterministic heavy-tailed address stream (α=1.3, β=90 B).
fn synthetic_addrs(n: usize, seed: u64) -> Vec<u64> {
    SyntheticTrace::new(1.3, 90.0, 64, seed).take(n).collect()
}

/// Write `addrs` to a fresh `.mtr` file under the target tmp dir.
fn write_trace(name: &str, addrs: &[u64], total_instructions: u64) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    fs::create_dir_all(&dir).expect("create tmp dir");
    let path = dir.join(name);
    let mut w = TraceWriter::create(&path, 1).expect("create trace");
    for &a in addrs {
        w.record(a).expect("record");
    }
    w.finish(total_instructions).expect("finish");
    path
}

/// The streaming engine and the one-shot in-memory analyzer are the same
/// computation: identical α/β/R² bits, identical histogram totals.
#[test]
fn streaming_matches_in_memory_exactly() {
    let addrs = synthetic_addrs(50_000, 11);

    let mut inmem = StackDistanceAnalyzer::new(64);
    for &a in &addrs {
        inmem.access(a);
    }
    let reference = fit_locality_checked(&inmem.histogram().cdf_points()).expect("fit");

    let mut stream = StreamAnalyzer::new(64);
    stream.push_chunk(&addrs);
    assert_eq!(stream.unique_blocks(), inmem.unique_blocks());
    let report = stream.finish(100_000).expect("fit");

    assert_eq!(report.alpha.to_bits(), reference.alpha.to_bits());
    assert_eq!(report.beta.to_bits(), reference.beta.to_bits());
    assert_eq!(report.r_squared.to_bits(), reference.r_squared.to_bits());
    assert_eq!(report.records, addrs.len() as u64);
    assert_eq!(report.rho, 0.5);
}

/// `run_fit` over a real file is byte-identical at 1 KiB chunks, 64 KiB
/// chunks, and whole-trace chunks — the out-of-core path introduces no
/// chunk-boundary artifacts.
#[test]
fn chunk_size_is_invisible_through_the_file_path() {
    let addrs = synthetic_addrs(150_000, 23);
    let path = write_trace("chunks.mtr", &addrs, 300_000);
    let trace = path.to_str().expect("utf8 path").to_string();

    let report_at = |chunk_records: u64| {
        let mut req = FitRequest::new(trace.clone());
        req.chunk_records = chunk_records;
        let report = run_fit(&req).expect("fit");
        (
            serde_json::to_string_pretty(&report.to_json()).expect("json"),
            report,
        )
    };

    let (whole_json, whole) = report_at(addrs.len() as u64);
    for chunk_records in [1024, 64 * 1024] {
        let (json, report) = report_at(chunk_records);
        assert_eq!(json, whole_json, "chunk_records={chunk_records} diverged");
        assert_eq!(report, whole);
    }
    assert_eq!(whole.records, addrs.len() as u64);
    assert_eq!(whole.rho, 0.5);
    // The stationary stream has long since converged at this length.
    assert!(whole.converged, "150k-record stationary stream converged");
}

/// A trace 4× larger than the chunk budget streams through with peak
/// resident state (analysis structures + chunk buffer) bounded well
/// below the file size — and growing the trace further does not grow
/// the peak at all once the working set saturates.
#[test]
fn out_of_core_trace_fits_in_bounded_state() {
    // Footprint-capped stream: the live-block set saturates early, so
    // resident state stops growing while the file keeps getting longer.
    let gen = |n: usize| -> Vec<u64> {
        SyntheticTrace::new(1.3, 90.0, 64, 31)
            .with_footprint((1u64 << 14) as f64)
            .take(n)
            .collect()
    };
    const CHUNK_RECORDS: u64 = 8 * 1024;

    let peak_of = |name: &str, addrs: &[u64]| -> (u64, u64) {
        let path = write_trace(name, addrs, 0);
        let file_bytes = fs::metadata(&path).expect("stat").len();
        let mut reader = memhier_trace::TraceReader::open(&path).expect("open");
        let mut an = StreamAnalyzer::new(64);
        let mut chunk = Vec::with_capacity(CHUNK_RECORDS as usize);
        loop {
            chunk.clear();
            while (chunk.len() as u64) < CHUNK_RECORDS {
                match reader.next_record().expect("read") {
                    Some(a) => chunk.push(a),
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }
            an.push_chunk(&chunk);
        }
        assert_eq!(an.records(), addrs.len() as u64);
        (an.peak_state_bytes(), file_bytes)
    };

    // 4x the chunk budget, then 16x that again (the fenwick tree's
    // fixed 2^16-slot preallocation is ~256 KiB, so the file must be
    // comfortably past that to demonstrate the bound).
    let small = gen((4 * CHUNK_RECORDS) as usize);
    let large = gen((64 * CHUNK_RECORDS) as usize);
    let (peak_small, _) = peak_of("bounded_small.mtr", &small);
    let (peak_large, file_large) = peak_of("bounded_large.mtr", &large);

    // Saturated working set: a 4x longer trace costs zero extra state.
    assert_eq!(
        peak_small, peak_large,
        "peak resident state grew with trace length"
    );
    // The whole resident footprint (analysis state + chunk buffer) is a
    // small fraction of the trace being digested.
    let resident = peak_large + CHUNK_RECORDS * 8;
    assert!(
        resident * 2 < file_large,
        "resident {resident} B is not bounded below file size {file_large} B"
    );
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compare `actual` against `tests/golden/<name>`, or rewrite the
/// fixture when `MEMHIER_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("MEMHIER_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, actual).expect("write fixture");
        eprintln!("[blessed {}]", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing fixture {}; generate it with MEMHIER_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "`{name}` diverged from the golden schema fixture.\n\
         If the schema change is intentional, re-bless with\n\
         MEMHIER_BLESS=1 and call it out in the PR."
    );
}

/// The exact bytes `memhier fit --trace --json` prints (and `/v1/fit`
/// serves) for a fixed synthetic stream: schema, field order, and float
/// spelling all pinned.
#[test]
fn golden_fit_report_schema() {
    let mut an = StreamAnalyzer::new(64);
    an.push_chunk(&synthetic_addrs(40_000, 3));
    let report = an.finish(80_000).expect("fit");
    let body = format!(
        "{}\n",
        serde_json::to_string_pretty(&report.to_json()).expect("json")
    );
    check_golden("fit_report.json", &body);

    // The pinned body parses back into an identical report: the wire
    // format is a fixed point on responses too.
    let v: serde_json::Value = serde_json::from_str(body.trim()).expect("parse");
    let parsed = FitReport::from_json(&v).expect("fixture parses");
    assert_eq!(parsed, report);
    assert_eq!(parsed.to_json(), report.to_json());
}
