//! The string-keyed workload registry.
//!
//! Where [`crate::registry::WorkloadKind`] enumerates the built-in
//! kernels, this module is the *open* face of the workload universe: every
//! generator — built-in or registered at runtime by a downstream crate —
//! is a [`WorkloadSpec`] trait object keyed by name, carrying a typed
//! parameter schema ([`ParamInfo`], shared with the platform registry in
//! `memhier-core`) and a builder from a JSON parameter map.
//!
//! Built-in specs resolve to a sized [`Workload`] (so they flow through
//! every pipeline: fixtures, fitting, the cost optimizer); out-of-tree
//! specs may instead return a ready [`SpmdProgram`], which the simulate
//! and trace paths accept directly.
//!
//! ```
//! use memhier_workloads::{workload_by_key, ResolvedWorkload};
//! use serde::__private::Value;
//!
//! let spec = workload_by_key("stencil4d").unwrap();
//! match spec.build(&Value::Null).unwrap() {
//!     ResolvedWorkload::Sized(w) => assert!(w.supports_processes(4)),
//!     ResolvedWorkload::Program(_) => unreachable!("builtins are sized"),
//! }
//! ```

use crate::registry::{Workload, WorkloadKind};
use crate::spmd::SpmdProgram;
use memhier_core::ParamInfo;
use serde::__private::Value;
use std::sync::{Arc, OnceLock, RwLock};

/// What a registry key resolves to.
pub enum ResolvedWorkload {
    /// A sized built-in — usable everywhere (simulation, analytic model,
    /// fixtures, cost search).
    Sized(Workload),
    /// A custom program from a runtime-registered spec — usable on the
    /// simulation and trace paths.
    Program(Arc<dyn SpmdProgram>),
}

impl std::fmt::Debug for ResolvedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolvedWorkload::Sized(w) => f.debug_tuple("Sized").field(w).finish(),
            ResolvedWorkload::Program(p) => f.debug_tuple("Program").field(&p.name()).finish(),
        }
    }
}

/// A workload back-end: a named, parameterized address-stream generator.
pub trait WorkloadSpec: Sync + Send {
    /// Canonical registry key (the kind's display name for built-ins).
    fn key(&self) -> &'static str;
    /// Additional accepted spellings.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }
    /// One-line description for registry listings.
    fn description(&self) -> &'static str;
    /// The typed parameter schema this generator accepts.
    fn params(&self) -> &'static [ParamInfo];
    /// The built-in kind this spec wraps, when it wraps one.
    fn kind(&self) -> Option<WorkloadKind> {
        None
    }
    /// Build from a JSON object of parameters (missing keys take the
    /// schema defaults; unknown keys are rejected).
    fn build(&self, params: &Value) -> Result<ResolvedWorkload, String>;
}

/// The `size` parameter every built-in accepts.
const SIZE_PARAM: ParamInfo = ParamInfo {
    name: "size",
    kind: "string",
    about: "Base problem size: small | medium | paper",
    default: "paper",
};

fn check_unknown_keys(spec: &dyn WorkloadSpec, params: &Value) -> Result<(), String> {
    let Value::Object(fields) = params else {
        if params.is_null() {
            return Ok(());
        }
        return Err(format!(
            "workload `{}` parameters must be a JSON object",
            spec.key()
        ));
    };
    for (k, _) in fields {
        if !spec.params().iter().any(|p| p.name == k) {
            let known: Vec<&str> = spec.params().iter().map(|p| p.name).collect();
            return Err(format!(
                "workload `{}` has no parameter `{k}` (known: {})",
                spec.key(),
                known.join(", ")
            ));
        }
    }
    Ok(())
}

fn get_usize(params: &Value, key: &str, default: usize) -> Result<usize, String> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("parameter `{key}` must be a positive integer")),
    }
}

fn get_u32(params: &Value, key: &str, default: u32) -> Result<u32, String> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("parameter `{key}` must be a positive integer")),
    }
}

fn base_size(kind: WorkloadKind, params: &Value) -> Result<Workload, String> {
    match params.get("size").and_then(|v| v.as_str()) {
        None => Ok(Workload::paper(kind)),
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "small" => Ok(Workload::small(kind)),
            "medium" => Ok(Workload::medium(kind)),
            "paper" => Ok(Workload::paper(kind)),
            other => Err(format!(
                "unknown size `{other}` (known: small, medium, paper)"
            )),
        },
    }
}

/// A built-in spec: a kind, a schema, and field-override plumbing.
struct BuiltinSpec {
    kind: WorkloadKind,
    aliases: &'static [&'static str],
    description: &'static str,
    params: &'static [ParamInfo],
}

macro_rules! p {
    ($name:literal, $kind:literal, $about:literal, $default:literal) => {
        ParamInfo {
            name: $name,
            kind: $kind,
            about: $about,
            default: $default,
        }
    };
}

static FFT_PARAMS: [ParamInfo; 2] = [
    SIZE_PARAM,
    p!(
        "points",
        "u64",
        "Total complex points (a power of 4)",
        "65536"
    ),
];
static LU_PARAMS: [ParamInfo; 3] = [
    SIZE_PARAM,
    p!("n", "u64", "Matrix dimension", "512"),
    p!("block", "u64", "Block dimension", "16"),
];
static RADIX_PARAMS: [ParamInfo; 4] = [
    SIZE_PARAM,
    p!("keys", "u64", "Number of keys", "1048576"),
    p!("radix", "u64", "Digit radix (a power of two)", "1024"),
    p!("key_bits", "u32", "Key width in bits", "20"),
];
static EDGE_PARAMS: [ParamInfo; 3] = [
    SIZE_PARAM,
    p!("dim", "u64", "Image dimension", "128"),
    p!("iterations", "u64", "Blur/register/match iterations", "4"),
];
static TPCC_PARAMS: [ParamInfo; 3] = [
    SIZE_PARAM,
    p!("db_cells", "u64", "Cells per database region", "131072"),
    p!(
        "refs_per_proc",
        "u64",
        "References each process issues",
        "500000"
    ),
];
static STENCIL_PARAMS: [ParamInfo; 3] = [
    SIZE_PARAM,
    p!("l", "u64", "Lattice extent per dimension", "16"),
    p!("iterations", "u64", "Relaxation sweeps", "8"),
];
static STREAM_PARAMS: [ParamInfo; 3] = [
    SIZE_PARAM,
    p!("elems", "u64", "Elements per array", "1048576"),
    p!("passes", "u64", "Scan passes", "4"),
];
static GRAPH_PARAMS: [ParamInfo; 3] = [
    SIZE_PARAM,
    p!("nodes", "u64", "Permutation size", "262144"),
    p!("steps", "u64", "Hops each process takes", "500000"),
];
static INFER_PARAMS: [ParamInfo; 4] = [
    SIZE_PARAM,
    p!("dim", "u64", "Layer width", "128"),
    p!("layers", "u64", "Layer count", "4"),
    p!("batch", "u64", "Batch rows", "32"),
];

impl WorkloadSpec for BuiltinSpec {
    fn key(&self) -> &'static str {
        self.kind.name()
    }
    fn aliases(&self) -> &'static [&'static str] {
        self.aliases
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn params(&self) -> &'static [ParamInfo] {
        self.params
    }
    fn kind(&self) -> Option<WorkloadKind> {
        Some(self.kind)
    }
    fn build(&self, params: &Value) -> Result<ResolvedWorkload, String> {
        check_unknown_keys(self, params)?;
        let mut w = base_size(self.kind, params)?;
        match &mut w {
            Workload::Fft { points } => {
                *points = get_usize(params, "points", *points)?;
                if !points.is_power_of_two() || points.trailing_zeros() % 2 != 0 {
                    return Err(format!("`points` must be a power of 4, got {points}"));
                }
            }
            Workload::Lu { n, block } => {
                *n = get_usize(params, "n", *n)?;
                *block = get_usize(params, "block", *block)?;
                if *n % *block != 0 {
                    return Err(format!("`block` ({block}) must divide `n` ({n})"));
                }
            }
            Workload::Radix {
                keys,
                radix,
                key_bits,
            } => {
                *keys = get_usize(params, "keys", *keys)?;
                *radix = get_usize(params, "radix", *radix)?;
                *key_bits = get_u32(params, "key_bits", *key_bits)?;
                if !radix.is_power_of_two() {
                    return Err(format!("`radix` must be a power of two, got {radix}"));
                }
            }
            Workload::Edge { dim, iterations } => {
                *dim = get_usize(params, "dim", *dim)?;
                *iterations = get_usize(params, "iterations", *iterations)?;
            }
            Workload::Tpcc {
                db_cells,
                refs_per_proc,
            } => {
                *db_cells = get_usize(params, "db_cells", *db_cells)?;
                *refs_per_proc = get_usize(params, "refs_per_proc", *refs_per_proc)?;
            }
            Workload::Stencil4D { l, iterations } => {
                *l = get_usize(params, "l", *l)?;
                *iterations = get_usize(params, "iterations", *iterations)?;
                if *l < 2 {
                    return Err("`l` must be at least 2".to_string());
                }
            }
            Workload::Stream { elems, passes } => {
                *elems = get_usize(params, "elems", *elems)?;
                *passes = get_usize(params, "passes", *passes)?;
            }
            Workload::GraphWalk { nodes, steps } => {
                *nodes = get_usize(params, "nodes", *nodes)?;
                *steps = get_usize(params, "steps", *steps)?;
                if *nodes < 2 {
                    return Err("`nodes` must be at least 2".to_string());
                }
            }
            Workload::Inference { dim, layers, batch } => {
                *dim = get_usize(params, "dim", *dim)?;
                *layers = get_usize(params, "layers", *layers)?;
                *batch = get_usize(params, "batch", *batch)?;
            }
        }
        Ok(ResolvedWorkload::Sized(w))
    }
}

fn builtin_workloads() -> Vec<&'static dyn WorkloadSpec> {
    static BUILTINS: [BuiltinSpec; 9] = [
        BuiltinSpec {
            kind: WorkloadKind::Fft,
            aliases: &[],
            description: "Six-step complex 1-D FFT (SPLASH-2 kernel)",
            params: &FFT_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::Lu,
            aliases: &[],
            description: "Blocked dense LU factorization (SPLASH-2 kernel)",
            params: &LU_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::Radix,
            aliases: &[],
            description: "Iterative radix sort (SPLASH-2 kernel)",
            params: &RADIX_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::Edge,
            aliases: &[],
            description: "Iterative parallel edge detection",
            params: &EDGE_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::Tpcc,
            aliases: &["TPCC"],
            description: "Synthetic commercial workload at the paper's TPC-C locality",
            params: &TPCC_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::Stencil4D,
            aliases: &["STENCIL"],
            description: "QCD-style 4-D nearest-neighbor stencil with halo exchange",
            params: &STENCIL_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::Stream,
            aliases: &[],
            description: "Streaming scan: touch-once locality (alpha -> 1)",
            params: &STREAM_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::GraphWalk,
            aliases: &["GRAPH"],
            description: "Pointer-chasing traversal of a random permutation cycle",
            params: &GRAPH_PARAMS,
        },
        BuiltinSpec {
            kind: WorkloadKind::Inference,
            aliases: &["INFER"],
            description: "Batched weight-streaming neural-network inference",
            params: &INFER_PARAMS,
        },
    ];
    BUILTINS.iter().map(|s| s as &dyn WorkloadSpec).collect()
}

fn workload_registry() -> &'static RwLock<Vec<&'static dyn WorkloadSpec>> {
    static REG: OnceLock<RwLock<Vec<&'static dyn WorkloadSpec>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(builtin_workloads()))
}

/// Every registered workload generator, built-ins first.
pub fn workload_specs() -> Vec<&'static dyn WorkloadSpec> {
    workload_registry()
        .read()
        .expect("workload registry poisoned")
        .clone()
}

/// Canonical keys of every registered workload.
pub fn workload_keys() -> Vec<&'static str> {
    workload_specs().iter().map(|s| s.key()).collect()
}

/// Look a generator up by key or alias, case-insensitively.
pub fn workload_by_key(name: &str) -> Option<&'static dyn WorkloadSpec> {
    workload_specs().into_iter().find(|s| {
        s.key().eq_ignore_ascii_case(name)
            || s.aliases().iter().any(|a| a.eq_ignore_ascii_case(name))
    })
}

/// Register an out-of-tree generator.  The spec is leaked (registries live
/// for the process); a key or alias collision is rejected.
pub fn register_workload(spec: Box<dyn WorkloadSpec>) -> Result<&'static dyn WorkloadSpec, String> {
    if workload_by_key(spec.key()).is_some()
        || spec.aliases().iter().any(|a| workload_by_key(a).is_some())
    {
        return Err(format!("workload `{}` is already registered", spec.key()));
    }
    let leaked: &'static dyn WorkloadSpec = Box::leak(spec);
    workload_registry()
        .write()
        .expect("workload registry poisoned")
        .push(leaked);
    Ok(leaked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::{run_spmd, SpmdCtx};
    use serde_json::json;

    fn sized(r: ResolvedWorkload) -> Workload {
        match r {
            ResolvedWorkload::Sized(w) => w,
            ResolvedWorkload::Program(_) => panic!("expected a sized workload"),
        }
    }

    #[test]
    fn every_builtin_kind_is_registered() {
        for kind in WorkloadKind::ALL {
            let spec = workload_by_key(kind.name())
                .unwrap_or_else(|| panic!("{} not in registry", kind.name()));
            assert_eq!(spec.kind(), Some(kind));
            assert!(!spec.description().is_empty());
            assert!(spec.params().iter().any(|p| p.name == "size"));
        }
        assert!(workload_keys().len() >= 9);
    }

    #[test]
    fn lookup_is_case_insensitive_and_alias_aware() {
        for (spelling, kind) in [
            ("fft", WorkloadKind::Fft),
            ("tpcc", WorkloadKind::Tpcc),
            ("TPC-C", WorkloadKind::Tpcc),
            ("stencil", WorkloadKind::Stencil4D),
            ("GRAPH", WorkloadKind::GraphWalk),
            ("infer", WorkloadKind::Inference),
        ] {
            assert_eq!(
                workload_by_key(spelling).map(|s| s.kind()),
                Some(Some(kind)),
                "{spelling}"
            );
        }
        assert!(workload_by_key("no-such-kernel").is_none());
    }

    #[test]
    fn null_params_build_paper_sizes() {
        for kind in WorkloadKind::ALL {
            let spec = workload_by_key(kind.name()).unwrap();
            let w = sized(spec.build(&Value::Null).unwrap());
            assert_eq!(w, Workload::paper(kind), "{}", kind.name());
        }
    }

    #[test]
    fn size_and_field_overrides_compose() {
        let spec = workload_by_key("Stencil4D").unwrap();
        let w = sized(
            spec.build(&json!({"size": "small", "iterations": 5}))
                .unwrap(),
        );
        assert_eq!(
            w,
            Workload::Stencil4D {
                l: 8,
                iterations: 5
            }
        );

        let spec = workload_by_key("FFT").unwrap();
        let w = sized(spec.build(&json!({"points": 16384})).unwrap());
        assert_eq!(w, Workload::Fft { points: 16384 });
    }

    #[test]
    fn bad_params_are_rejected_with_known_keys() {
        let spec = workload_by_key("Stream").unwrap();
        let err = spec.build(&json!({"stride": 2})).unwrap_err();
        assert!(err.contains("no parameter `stride`"), "{err}");
        assert!(err.contains("elems"), "{err}");

        let err = spec.build(&json!({"elems": 0})).unwrap_err();
        assert!(err.contains("positive"), "{err}");

        let spec = workload_by_key("FFT").unwrap();
        let err = spec.build(&json!({"points": 1000})).unwrap_err();
        assert!(err.contains("power of 4"), "{err}");

        let err = spec.build(&json!({"size": "jumbo"})).unwrap_err();
        assert!(err.contains("unknown size"), "{err}");
    }

    /// A minimal out-of-tree generator: each process ping-pongs between
    /// two cells.
    struct PingPong;
    struct PingPongProgram {
        procs: usize,
        swaps: usize,
    }

    impl crate::spmd::SpmdProgram for PingPongProgram {
        fn processes(&self) -> usize {
            self.procs
        }
        fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
            let base = 0x1000 + (pid as u64) * 64;
            for _ in 0..self.swaps {
                ctx.read(base);
                ctx.write(base + 8);
            }
            ctx.barrier();
        }
    }

    static PINGPONG_PARAMS: [ParamInfo; 1] = [p!("swaps", "u64", "Round trips per process", "100")];

    impl WorkloadSpec for PingPong {
        fn key(&self) -> &'static str {
            "PingPong"
        }
        fn description(&self) -> &'static str {
            "test-only two-cell ping-pong"
        }
        fn params(&self) -> &'static [ParamInfo] {
            &PINGPONG_PARAMS
        }
        fn build(&self, params: &Value) -> Result<ResolvedWorkload, String> {
            check_unknown_keys(self, params)?;
            let swaps = get_usize(params, "swaps", 100)?;
            Ok(ResolvedWorkload::Program(Arc::new(PingPongProgram {
                procs: 2,
                swaps,
            })))
        }
    }

    #[test]
    fn runtime_registration_extends_the_universe() {
        let spec = register_workload(Box::new(PingPong)).expect("first registration");
        assert_eq!(spec.key(), "PingPong");
        assert!(register_workload(Box::new(PingPong)).is_err(), "dup");

        let found = workload_by_key("pingpong").expect("resolvable by key");
        match found.build(&json!({"swaps": 7})).unwrap() {
            ResolvedWorkload::Program(p) => {
                let c = run_spmd(p);
                assert_eq!(c.mem_refs(), 2 * 2 * 7);
            }
            ResolvedWorkload::Sized(_) => panic!("expected a program"),
        }
        assert!(workload_keys().contains(&"PingPong"));
    }
}
