//! The EDGE kernel (§5.2): iterative parallel edge detection combining
//! "high positional accuracy with good noise reduction", iterating over
//! (1) blurring, (2) registering, (3) matching, (4) repeat-or-halt, with
//! the image partitioned **in rows among processes and a barrier after
//! each iteration** — the structure of Zhang, Dykes & Deng's distributed
//! edge detector the paper uses.
//!
//! Pixels are `u32` grayscale.  Boundary rows of each partition read the
//! neighbor partition's rows (the kernel's only sharing), giving EDGE its
//! excellent locality (Table 2: α = 1.71, β = 85.03) and the highest
//! memory-reference density (ρ = 0.45).

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use std::sync::Arc;

/// The edge-detection program instance.
pub struct EdgeProgram {
    procs: usize,
    w: usize,
    h: usize,
    iterations: usize,
    threshold: u32,
    /// Current image (updated each iteration with the blurred plane).
    img: TracedArray<u32>,
    /// Blurred plane.
    blur: TracedArray<u32>,
    /// Gradient-magnitude plane ("registering").
    grad: TracedArray<u32>,
    /// Detected edge map ("matching").
    out: TracedArray<u32>,
    /// Input snapshot for the reference implementation.
    input: Vec<u32>,
}

impl EdgeProgram {
    /// Build over a `dim × dim` image for `procs` processes (must divide
    /// `dim`), pixels from `init(y, x)`.
    pub fn new(
        dim: usize,
        iterations: usize,
        procs: usize,
        init: impl Fn(usize, usize) -> u32,
    ) -> Arc<Self> {
        assert!(
            dim.is_multiple_of(procs),
            "process count must divide image height"
        );
        assert!(dim >= 4);
        let mut sp = AddressSpace::default();
        let img = TracedArray::new_with(sp.alloc(dim * dim), dim * dim, |i| init(i / dim, i % dim));
        let blur = TracedArray::new(sp.alloc(dim * dim), dim * dim);
        let grad = TracedArray::new(sp.alloc(dim * dim), dim * dim);
        let out = TracedArray::new(sp.alloc(dim * dim), dim * dim);
        let input = img.snapshot();
        Arc::new(EdgeProgram {
            procs,
            w: dim,
            h: dim,
            iterations,
            threshold: 24,
            img,
            blur,
            grad,
            out,
            input,
        })
    }

    /// Deterministic synthetic test image: smooth gradient + a bright
    /// square, so real edges exist.
    pub fn synthetic(dim: usize, iterations: usize, procs: usize) -> Arc<Self> {
        Self::new(dim, iterations, procs, move |y, x| {
            let base = ((x * 7 + y * 3) % 64) as u32;
            let q = dim / 4;
            if (q..3 * q).contains(&x) && (q..3 * q).contains(&y) {
                base + 128
            } else {
                base
            }
        })
    }

    fn rows_of(&self, pid: usize) -> std::ops::Range<usize> {
        let per = self.h / self.procs;
        pid * per..(pid + 1) * per
    }

    fn clamp(&self, v: isize, hi: usize) -> usize {
        v.clamp(0, hi as isize - 1) as usize
    }

    /// The detected edge map after a run (untraced).
    pub fn edges(&self) -> Vec<u32> {
        self.out.snapshot()
    }

    /// Straight-line sequential reference implementation (untraced),
    /// returning the expected edge map.
    pub fn reference(&self) -> Vec<u32> {
        let (w, h) = (self.w, self.h);
        let mut img = self.input.clone();
        let mut blur = vec![0u32; w * h];
        let mut grad = vec![0u32; w * h];
        let mut out = vec![0u32; w * h];
        let cl = |v: isize, hi: usize| v.clamp(0, hi as isize - 1) as usize;
        for _ in 0..self.iterations {
            for y in 0..h {
                for x in 0..w {
                    let mut s = 0u32;
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            s += img[cl(y as isize + dy, h) * w + cl(x as isize + dx, w)];
                        }
                    }
                    blur[y * w + x] = s / 9;
                }
            }
            for y in 0..h {
                for x in 0..w {
                    let gx = blur[y * w + cl(x as isize + 1, w)] as i64
                        - blur[y * w + cl(x as isize - 1, w)] as i64;
                    let gy = blur[cl(y as isize + 1, h) * w + x] as i64
                        - blur[cl(y as isize - 1, h) * w + x] as i64;
                    grad[y * w + x] = (gx.abs() + gy.abs()) as u32;
                }
            }
            for y in 0..h {
                for x in 0..w {
                    out[y * w + x] = if grad[y * w + x] > self.threshold {
                        255
                    } else {
                        0
                    };
                }
            }
            img.copy_from_slice(&blur);
        }
        out
    }
}

impl SpmdProgram for EdgeProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let (w, h) = (self.w, self.h);
        for _ in 0..self.iterations {
            // (1) Blur: 3×3 mean; boundary rows read neighbors' partitions.
            for y in self.rows_of(pid) {
                for x in 0..w {
                    let mut s = 0u32;
                    for dy in -1isize..=1 {
                        for dx in -1isize..=1 {
                            let yy = self.clamp(y as isize + dy, h);
                            let xx = self.clamp(x as isize + dx, w);
                            s += self.img.get(ctx, yy * w + xx);
                        }
                    }
                    self.blur.set(ctx, y * w + x, s / 9);
                    ctx.compute(12);
                }
            }
            ctx.barrier();
            // (2) Register: gradient magnitude of the blurred plane.
            for y in self.rows_of(pid) {
                for x in 0..w {
                    let xr = self.clamp(x as isize + 1, w);
                    let xl = self.clamp(x as isize - 1, w);
                    let yd = self.clamp(y as isize + 1, h);
                    let yu = self.clamp(y as isize - 1, h);
                    let gx = self.blur.get(ctx, y * w + xr) as i64
                        - self.blur.get(ctx, y * w + xl) as i64;
                    let gy = self.blur.get(ctx, yd * w + x) as i64
                        - self.blur.get(ctx, yu * w + x) as i64;
                    self.grad.set(ctx, y * w + x, (gx.abs() + gy.abs()) as u32);
                    ctx.compute(8);
                }
            }
            ctx.barrier();
            // (3) Match: threshold into the edge map; promote the blurred
            //     plane to the next iteration's image.
            for y in self.rows_of(pid) {
                for x in 0..w {
                    let g = self.grad.get(ctx, y * w + x);
                    self.out
                        .set(ctx, y * w + x, if g > self.threshold { 255 } else { 0 });
                    let b = self.blur.get(ctx, y * w + x);
                    self.img.set(ctx, y * w + x, b);
                    ctx.compute(3);
                }
            }
            // (4) Repeat or halt — barrier after each iteration (§5.2).
            ctx.barrier();
        }
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        let mut v = Vec::new();
        let per = self.h / self.procs;
        for pid in 0..self.procs {
            let (lo, hi) = (pid * per * self.w, (pid + 1) * per * self.w);
            for arr in [&self.img, &self.blur, &self.grad, &self.out] {
                v.push((arr.addr_of(lo), arr.addr_of(hi), pid));
            }
        }
        v
    }

    fn name(&self) -> &str {
        "EDGE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn matches_reference_serial() {
        let p = EdgeProgram::synthetic(16, 2, 1);
        run_spmd(Arc::clone(&p));
        assert_eq!(p.edges(), p.reference());
    }

    #[test]
    fn parallel_matches_reference() {
        for procs in [2, 4, 8] {
            let p = EdgeProgram::synthetic(16, 3, procs);
            run_spmd(Arc::clone(&p));
            assert_eq!(p.edges(), p.reference(), "procs = {procs}");
        }
    }

    #[test]
    fn detects_the_square() {
        let p = EdgeProgram::synthetic(32, 1, 2);
        run_spmd(Arc::clone(&p));
        let e = p.edges();
        // Some edges found, but not everything is an edge.
        let on = e.iter().filter(|&&v| v == 255).count();
        assert!(on > 0, "no edges detected");
        assert!(on < e.len() / 2, "too many edges: {on}");
    }

    #[test]
    fn rho_is_highest_of_kernels() {
        let c = run_spmd(EdgeProgram::synthetic(32, 2, 2));
        // EDGE: highest memory access frequency (paper: 0.45).
        assert!(c.rho() > 0.35, "rho = {}", c.rho());
    }

    #[test]
    fn barrier_count() {
        let p = EdgeProgram::synthetic(16, 3, 2);
        let c = run_spmd(p);
        // 3 barriers per iteration × 3 iterations × 2 processes.
        assert_eq!(c.barriers, 18);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_rows() {
        EdgeProgram::synthetic(16, 1, 3);
    }
}
