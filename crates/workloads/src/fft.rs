//! The FFT kernel (§5.2): a complex 1-D **six-step FFT** over `N = m²`
//! points viewed as an `m × m` matrix — transpose, row FFTs, twiddle
//! multiply, transpose, row FFTs, transpose — with contiguous row
//! partitions per process and a barrier between steps, exactly the
//! SPLASH-2 structure the paper describes ("both sets of data are
//! partitioned into submatrices so that each processor is assigned a
//! contiguous subset of data which are allocated in its local memory").
//!
//! The data proper and the roots-of-unity table are both [`TracedArray`]s,
//! so every butterfly's loads and stores reach the simulator.

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use std::sync::Arc;

/// The six-step FFT program instance.
pub struct FftProgram {
    procs: usize,
    /// Total points `N = m·m`.
    n: usize,
    /// Matrix dimension `m = √N`.
    m: usize,
    a_re: TracedArray<f64>,
    a_im: TracedArray<f64>,
    b_re: TracedArray<f64>,
    b_im: TracedArray<f64>,
    /// Roots of unity of order `N`: `roots[k] = e^{−2πik/N}`.
    w_re: TracedArray<f64>,
    w_im: TracedArray<f64>,
}

impl FftProgram {
    /// Build an instance over `points` (a power of 4 so `m = √N` is a
    /// power of 2) for `procs` processes (must divide `m`), with input
    /// `x[i] = input(i)`.
    pub fn new(points: usize, procs: usize, input: impl Fn(usize) -> (f64, f64)) -> Arc<Self> {
        assert!(
            points >= 4 && points.is_power_of_two() && points.trailing_zeros().is_multiple_of(2),
            "points must be a power of 4 and at least 4, got {points}"
        );
        let m = 1usize << (points.trailing_zeros() / 2);
        assert!(
            procs >= 1 && m.is_multiple_of(procs),
            "process count {procs} must divide m = {m}"
        );
        let n = points;
        let mut sp = AddressSpace::default();
        let a_re = TracedArray::new_with(sp.alloc(n), n, |i| input(i).0);
        let a_im = TracedArray::new_with(sp.alloc(n), n, |i| input(i).1);
        let b_re = TracedArray::new(sp.alloc(n), n);
        let b_im = TracedArray::new(sp.alloc(n), n);
        let theta = -2.0 * std::f64::consts::PI / n as f64;
        let w_re = TracedArray::new_with(sp.alloc(n), n, |k| (theta * k as f64).cos());
        let w_im = TracedArray::new_with(sp.alloc(n), n, |k| (theta * k as f64).sin());
        Arc::new(FftProgram {
            procs,
            n,
            m,
            a_re,
            a_im,
            b_re,
            b_im,
            w_re,
            w_im,
        })
    }

    /// Deterministic pseudo-random test input.
    pub fn random_input(points: usize, procs: usize, seed: u64) -> Arc<Self> {
        Self::new(points, procs, move |i| {
            let mut x = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 32;
            x = x.wrapping_mul(0xD6E8FEB86659FD93);
            let re = ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let im = ((x << 7 >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            (re, im)
        })
    }

    /// Matrix dimension `m`.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// The input point `x[i]` (untraced).  Valid only **before** a run —
    /// the A arrays are scratch space during the six steps.
    pub fn input_at(&self, i: usize) -> (f64, f64) {
        (self.a_re.get_silent(i), self.a_im.get_silent(i))
    }

    /// The result (natural order) after a run, untraced.
    pub fn output(&self) -> Vec<(f64, f64)> {
        (0..self.n)
            .map(|i| (self.b_re.get_silent(i), self.b_im.get_silent(i)))
            .collect()
    }

    /// The (untouched after run? no — A is scratched) initial input is not
    /// retained; tests capture it before running.
    fn rows_of(&self, pid: usize) -> std::ops::Range<usize> {
        let per = self.m / self.procs;
        pid * per..(pid + 1) * per
    }

    /// Transpose `src → dst` for the rows this process owns in `dst`.
    fn transpose(
        &self,
        ctx: &mut SpmdCtx,
        pid: usize,
        src: (&TracedArray<f64>, &TracedArray<f64>),
        dst: (&TracedArray<f64>, &TracedArray<f64>),
    ) {
        let m = self.m;
        for r in self.rows_of(pid) {
            for c in 0..m {
                let re = src.0.get(ctx, c * m + r);
                let im = src.1.get(ctx, c * m + r);
                dst.0.set(ctx, r * m + c, re);
                dst.1.set(ctx, r * m + c, im);
                ctx.compute(2); // index arithmetic
            }
        }
    }

    /// In-place iterative radix-2 FFT of one row of (`re`, `im`).
    /// Order-`len` roots are read from the shared order-`N` table at stride
    /// `N/len`.
    fn fft_row(&self, ctx: &mut SpmdCtx, re: &TracedArray<f64>, im: &TracedArray<f64>, row: usize) {
        let m = self.m;
        let base = row * m;
        // Bit-reversal permutation.
        let bits = m.trailing_zeros();
        for j in 0..m {
            let r = j.reverse_bits() >> (usize::BITS - bits);
            if r > j {
                let (xr, xi) = (re.get(ctx, base + j), im.get(ctx, base + j));
                let (yr, yi) = (re.get(ctx, base + r), im.get(ctx, base + r));
                re.set(ctx, base + j, yr);
                im.set(ctx, base + j, yi);
                re.set(ctx, base + r, xr);
                im.set(ctx, base + r, xi);
            }
            ctx.compute(3);
        }
        // Butterflies.
        let mut len = 2;
        while len <= m {
            let half = len / 2;
            let stride = self.n / len;
            let mut start = 0;
            while start < m {
                for j in 0..half {
                    let wr = self.w_re.get(ctx, stride * j);
                    let wi = self.w_im.get(ctx, stride * j);
                    let (ur, ui) = (re.get(ctx, base + start + j), im.get(ctx, base + start + j));
                    let (vr0, vi0) = (
                        re.get(ctx, base + start + j + half),
                        im.get(ctx, base + start + j + half),
                    );
                    let vr = vr0 * wr - vi0 * wi;
                    let vi = vr0 * wi + vi0 * wr;
                    re.set(ctx, base + start + j, ur + vr);
                    im.set(ctx, base + start + j, ui + vi);
                    re.set(ctx, base + start + j + half, ur - vr);
                    im.set(ctx, base + start + j + half, ui - vi);
                    ctx.compute(10); // complex mul + 2 complex adds
                }
                start += len;
            }
            len *= 2;
        }
    }

    /// Twiddle step: `B[t0][k1] *= W_N^{t0·k1}` for owned rows.
    fn twiddle(&self, ctx: &mut SpmdCtx, pid: usize) {
        let m = self.m;
        for t0 in self.rows_of(pid) {
            for k1 in 0..m {
                let idx = (t0 * k1) % self.n;
                let wr = self.w_re.get(ctx, idx);
                let wi = self.w_im.get(ctx, idx);
                let xr = self.b_re.get(ctx, t0 * m + k1);
                let xi = self.b_im.get(ctx, t0 * m + k1);
                self.b_re.set(ctx, t0 * m + k1, xr * wr - xi * wi);
                self.b_im.set(ctx, t0 * m + k1, xr * wi + xi * wr);
                ctx.compute(8);
            }
        }
    }
}

impl SpmdProgram for FftProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        // Step 1: B = Aᵀ.
        self.transpose(ctx, pid, (&self.a_re, &self.a_im), (&self.b_re, &self.b_im));
        ctx.barrier();
        // Step 2: FFT the owned rows of B.
        for r in self.rows_of(pid) {
            self.fft_row(ctx, &self.b_re, &self.b_im, r);
        }
        ctx.barrier();
        // Step 3: twiddle multiply.
        self.twiddle(ctx, pid);
        ctx.barrier();
        // Step 4: A = Bᵀ.
        self.transpose(ctx, pid, (&self.b_re, &self.b_im), (&self.a_re, &self.a_im));
        ctx.barrier();
        // Step 5: FFT the owned rows of A.
        for r in self.rows_of(pid) {
            self.fft_row(ctx, &self.a_re, &self.a_im, r);
        }
        ctx.barrier();
        // Step 6: B = Aᵀ — the natural-order result.
        self.transpose(ctx, pid, (&self.a_re, &self.a_im), (&self.b_re, &self.b_im));
        ctx.barrier();
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        // Each process owns its row range of every matrix array, plus a
        // slice of the roots table.
        let m = self.m;
        let per = m / self.procs;
        let mut v = Vec::new();
        for pid in 0..self.procs {
            let lo = pid * per * m;
            let hi = (pid + 1) * per * m;
            for arr in [&self.a_re, &self.a_im, &self.b_re, &self.b_im] {
                v.push((arr.addr_of(lo), arr.addr_of(hi), pid));
            }
            let rl = pid * (self.n / self.procs);
            let rh = (pid + 1) * (self.n / self.procs);
            for arr in [&self.w_re, &self.w_im] {
                v.push((arr.addr_of(rl), arr.addr_of(rh), pid));
            }
        }
        v
    }

    fn name(&self) -> &str {
        "FFT"
    }
}

/// Naive `O(N²)` DFT for verification.
pub fn naive_dft(input: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = input.len();
    let theta = -2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (t, &(xr, xi)) in input.iter().enumerate() {
                let ang = theta * (k * t % n) as f64;
                let (c, s) = (ang.cos(), ang.sin());
                re += xr * c - xi * s;
                im += xr * s + xi * c;
            }
            (re, im)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    fn max_err(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| ((x.0 - y.0).abs()).max((x.1 - y.1).abs()))
            .fold(0.0, f64::max)
    }

    #[test]
    fn impulse_transforms_to_ones() {
        let p = FftProgram::new(16, 1, |i| if i == 0 { (1.0, 0.0) } else { (0.0, 0.0) });
        run_spmd(Arc::clone(&p));
        for (re, im) in p.output() {
            assert!((re - 1.0).abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft_small() {
        let p = FftProgram::random_input(64, 1, 42);
        let input: Vec<(f64, f64)> = (0..64)
            .map(|i| (p.a_re.get_silent(i), p.a_im.get_silent(i)))
            .collect();
        run_spmd(Arc::clone(&p));
        let expect = naive_dft(&input);
        assert!(max_err(&p.output(), &expect) < 1e-9);
    }

    #[test]
    fn parallel_runs_agree_with_serial() {
        let serial = FftProgram::random_input(256, 1, 7);
        run_spmd(Arc::clone(&serial));
        let expect = serial.output();
        for procs in [2, 4, 8] {
            let par = FftProgram::random_input(256, procs, 7);
            run_spmd(Arc::clone(&par));
            assert!(
                max_err(&par.output(), &expect) < 1e-12,
                "procs = {procs} diverged"
            );
        }
    }

    #[test]
    fn counters_reasonable() {
        let p = FftProgram::random_input(256, 2, 1);
        let c = run_spmd(p);
        assert!(c.mem_refs() > 0 && c.compute > 0);
        // FFT is CPU-bound: rho well below 0.6.
        assert!(c.rho() < 0.6, "rho = {}", c.rho());
        assert_eq!(c.barriers, 12, "6 barriers x 2 procs");
    }

    #[test]
    fn partitions_cover_disjoint_ranges() {
        let p = FftProgram::random_input(256, 4, 1);
        let parts = p.partitions();
        assert_eq!(parts.len(), 4 * 6);
        for w in parts.windows(2) {
            assert!(w[0].0 < w[0].1);
        }
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn rejects_non_square_sizes() {
        FftProgram::new(128, 1, |_| (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_process_count() {
        FftProgram::new(256, 5, |_| (0.0, 0.0));
    }
}
