//! Pointer-chasing graph traversal: dependent loads with no spatial
//! locality.
//!
//! A random single-cycle permutation (built with Sattolo's algorithm, so
//! every node is reachable from every start) serves as the successor
//! array of a graph.  Each process starts at its own node and follows
//! `next[cur]` for a fixed number of hops — every load depends on the
//! previous one, and successive addresses are scattered across the whole
//! footprint, the memory-latency-bound access pattern of graph analytics
//! and linked data structures.  Every 16th hop stamps a visit mark into a
//! side array (the write traffic of frontier updates); a barrier every
//! 4096 hops keeps the walkers loosely coupled.

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Average non-memory instructions per hop (fractional, carried): index
/// arithmetic plus loop bookkeeping.
const HOP_COMPUTE: f64 = 1.4;
/// A visit mark is written every this many hops.
const MARK_EVERY: usize = 16;
/// Walkers re-synchronize every this many hops.
const SYNC_EVERY: usize = 4096;

/// The pointer-chase instance.
pub struct GraphWalkProgram {
    procs: usize,
    nodes: usize,
    steps: usize,
    /// Successor pointers: a single-cycle permutation (read-only).
    next: TracedArray<u64>,
    /// Visit marks (write-only; values are racy, addresses are not).
    marks: TracedArray<u64>,
    /// One result slot per process: the node its walk ended on.
    ends: TracedArray<u64>,
}

impl GraphWalkProgram {
    /// Build a `nodes`-cycle from `seed`; each of `procs` processes walks
    /// `steps` hops (`procs` must not exceed `nodes`).
    pub fn random_cycle(nodes: usize, steps: usize, procs: usize, seed: u64) -> Arc<Self> {
        assert!(nodes >= 2);
        assert!(
            procs <= nodes,
            "more processes ({procs}) than nodes ({nodes})"
        );
        // Sattolo's algorithm: a uniformly random cyclic permutation.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut perm: Vec<u64> = (0..nodes as u64).collect();
        for i in (1..nodes).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        let mut sp = AddressSpace::default();
        let next = TracedArray::new_with(sp.alloc(nodes), nodes, |i| perm[i]);
        let marks = TracedArray::new(sp.alloc(nodes), nodes);
        let ends = TracedArray::new(sp.alloc(procs), procs);
        Arc::new(GraphWalkProgram {
            procs,
            nodes,
            steps,
            next,
            marks,
            ends,
        })
    }

    /// Process `pid`'s starting node: spread evenly around the cycle's
    /// index space.
    fn start_of(&self, pid: usize) -> usize {
        pid * self.nodes / self.procs
    }

    /// Untraced walk — the analytically expected end node.
    pub fn silent_walk(&self, start: usize, steps: usize) -> usize {
        let mut cur = start;
        for _ in 0..steps {
            cur = self.next.get_silent(cur) as usize;
        }
        cur
    }

    /// Untraced end node for process `pid`.
    pub fn expected_end(&self, pid: usize) -> usize {
        self.silent_walk(self.start_of(pid), self.steps)
    }
}

impl SpmdProgram for GraphWalkProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let mut cur = self.start_of(pid);
        let mut carry = 0.0f64;
        for s in 0..self.steps {
            cur = self.next.get(ctx, cur) as usize;
            if s % MARK_EVERY == MARK_EVERY - 1 {
                self.marks.set(ctx, cur, pid as u64);
            }
            carry += HOP_COMPUTE;
            let k = carry as u32;
            if k > 0 {
                ctx.compute(k);
                carry -= k as f64;
            }
            if s % SYNC_EVERY == SYNC_EVERY - 1 {
                ctx.barrier();
            }
        }
        // Record where the walk ended so the result is observable (and
        // checkable) after the run; slots are per-process, so no races.
        self.ends.set(ctx, pid, cur as u64);
        ctx.barrier();
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        // Successors and marks have no owner structure: interleaved homes.
        Vec::new()
    }

    fn name(&self) -> &str {
        "GraphWalk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn permutation_is_a_single_cycle() {
        let p = GraphWalkProgram::random_cycle(257, 1, 1, 5);
        // Walking n steps from 0 returns to 0 and visits every node once.
        let mut seen = vec![false; 257];
        let mut cur = 0usize;
        for _ in 0..257 {
            assert!(!seen[cur], "revisited {cur} early");
            seen[cur] = true;
            cur = p.next.get_silent(cur) as usize;
        }
        assert_eq!(cur, 0);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn walk_ends_where_the_permutation_says() {
        let p = GraphWalkProgram::random_cycle(1024, 5000, 4, 9);
        run_spmd(Arc::clone(&p));
        for pid in 0..4 {
            let end = p.expected_end(pid);
            assert_eq!(p.ends.get_silent(pid), end as u64, "pid {pid}");
        }
    }

    #[test]
    fn reference_counts_and_rho() {
        let steps = 8192usize;
        let c = run_spmd(GraphWalkProgram::random_cycle(4096, steps, 2, 1));
        // Per process: one read per hop, a mark write every 16 hops, and
        // the final end-marker write.
        assert_eq!(c.reads, 2 * steps as u64);
        assert_eq!(c.writes, 2 * (steps / MARK_EVERY + 1) as u64);
        // 2 sync barriers + final, per process.
        assert_eq!(c.barriers, 2 * (steps / SYNC_EVERY + 1) as u64);
        assert!((c.rho() - 0.43).abs() < 0.02, "rho {}", c.rho());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run_spmd(GraphWalkProgram::random_cycle(2048, 3000, 2, 42));
        let b = run_spmd(GraphWalkProgram::random_cycle(2048, 3000, 2, 42));
        assert_eq!(a, b);
    }
}
