//! Batched weight-streaming neural-network inference.
//!
//! A dense multi-layer perceptron forward pass: `layers` square weight
//! matrices of `dim × dim` doubles applied to a `batch × dim` activation
//! matrix, with a ReLU between layers.  The activations stay hot (a few
//! rows per process), while every batch row streams the *entire* layer
//! weight matrix past the cache — the weight-bound regime of serving
//! workloads whose model exceeds on-chip memory.
//!
//! Activations are partitioned by batch row; weights are shared read-only
//! (interleaved homes on clustered platforms — every process pulls them
//! across the network).  A barrier separates layers.

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Non-memory instructions per multiply-accumulate: the FLOPs plus the
/// stride arithmetic of the weight stream.
const MAC_COMPUTE: u32 = 4;
/// Per-output bookkeeping: ReLU compare/select and loop control.
const OUTPUT_COMPUTE: u32 = 4;

/// The inference instance: stacked weights plus double-buffered
/// activations.
pub struct InferenceProgram {
    procs: usize,
    dim: usize,
    layers: usize,
    batch: usize,
    /// All layer weights, layer-major: `w[l][k][j]` at `(l·d + k)·d + j`.
    weights: TracedArray<f64>,
    /// Activations read by even layers, written by odd layers.
    act_a: TracedArray<f64>,
    /// Activations written by even layers, read by odd layers.
    act_b: TracedArray<f64>,
}

impl InferenceProgram {
    /// Build a `layers`-deep, `dim`-wide network with weights and inputs
    /// drawn from `seed`, over `batch` rows split across `procs`
    /// processes (`procs` must divide `batch`).
    pub fn random_weights(
        dim: usize,
        layers: usize,
        batch: usize,
        procs: usize,
        seed: u64,
    ) -> Arc<Self> {
        assert!(dim >= 1 && layers >= 1);
        assert!(
            batch.is_multiple_of(procs),
            "processes ({procs}) must divide the batch ({batch})"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Small weights keep activations bounded through the layers.
        let scale = 1.0 / dim as f64;
        let w: Vec<f64> = (0..layers * dim * dim)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let x: Vec<f64> = (0..batch * dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut sp = AddressSpace::default();
        let weights = TracedArray::new_with(sp.alloc(w.len()), w.len(), |i| w[i]);
        let act_a = TracedArray::new_with(sp.alloc(x.len()), x.len(), |i| x[i]);
        let act_b = TracedArray::new(sp.alloc(x.len()), x.len());
        Arc::new(InferenceProgram {
            procs,
            dim,
            layers,
            batch,
            weights,
            act_a,
            act_b,
        })
    }

    /// The activation array holding the final layer's output.
    fn result_array(&self) -> &TracedArray<f64> {
        if self.layers % 2 == 1 {
            &self.act_b
        } else {
            &self.act_a
        }
    }

    /// Untraced forward pass — the expected output activations, computed
    /// with the same operation order as the traced run.
    pub fn expected(&self) -> Vec<f64> {
        let d = self.dim;
        let mut src: Vec<f64> = (0..self.batch * d)
            .map(|i| self.act_a.get_silent(i))
            .collect();
        // act_a holds the original inputs only before the run; recompute
        // from weights, which are read-only throughout.
        let mut dst = vec![0.0; self.batch * d];
        for l in 0..self.layers {
            for r in 0..self.batch {
                for j in 0..d {
                    let mut acc = 0.0;
                    for k in 0..d {
                        acc += src[r * d + k] * self.weights.get_silent((l * d + k) * d + j);
                    }
                    dst[r * d + j] = acc.max(0.0);
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    /// Untraced snapshot of the final activations.
    pub fn result(&self) -> Vec<f64> {
        self.result_array().snapshot()
    }
}

impl SpmdProgram for InferenceProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let d = self.dim;
        let rows = self.batch / self.procs;
        let r0 = pid * rows;
        for l in 0..self.layers {
            let (src, dst) = if l % 2 == 0 {
                (&self.act_a, &self.act_b)
            } else {
                (&self.act_b, &self.act_a)
            };
            for r in r0..r0 + rows {
                for j in 0..d {
                    let mut acc = 0.0;
                    for k in 0..d {
                        // The weight stream: d² distinct cells per row.
                        acc += src.get(ctx, r * d + k) * self.weights.get(ctx, (l * d + k) * d + j);
                        ctx.compute(MAC_COMPUTE);
                    }
                    dst.set(ctx, r * d + j, acc.max(0.0));
                    ctx.compute(OUTPUT_COMPUTE);
                }
            }
            // All of a layer's outputs must exist before any process uses
            // them as the next layer's inputs.
            ctx.barrier();
        }
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        // Activations are owned by batch row; weights stay interleaved.
        let d = self.dim;
        let rows = self.batch / self.procs;
        let mut v = Vec::with_capacity(2 * self.procs);
        for pid in 0..self.procs {
            let (lo, hi) = (pid * rows * d, (pid + 1) * rows * d);
            v.push((self.act_a.addr_of(lo), self.act_a.addr_of(hi), pid));
            v.push((self.act_b.addr_of(lo), self.act_b.addr_of(hi), pid));
        }
        v
    }

    fn name(&self) -> &str {
        "Inference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn forward_pass_matches_untraced_replication() {
        for procs in [1usize, 2, 4] {
            let p = InferenceProgram::random_weights(12, 3, 8, procs, 21);
            let want = p.expected();
            run_spmd(Arc::clone(&p));
            let got = p.result();
            assert_eq!(got.len(), want.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), w.to_bits(), "cell {i}, procs {procs}");
            }
        }
    }

    #[test]
    fn weight_stream_dominates_references() {
        let (d, layers, batch) = (16usize, 2usize, 4usize);
        let c = run_spmd(InferenceProgram::random_weights(d, layers, batch, 2, 3));
        // Per output cell: d weight reads + d activation reads + 1 write.
        let cells = (layers * batch * d) as u64;
        assert_eq!(c.reads, cells * 2 * d as u64);
        assert_eq!(c.writes, cells);
        assert_eq!(c.barriers, (layers * 2) as u64);
        // ρ ≈ (2d + 1)/((2d + 1) + 4d + 4) → 1/3 for large d.
        assert!((c.rho() - 0.34).abs() < 0.02, "rho {}", c.rho());
    }

    #[test]
    fn relu_clamps_negatives() {
        let p = InferenceProgram::random_weights(8, 2, 2, 1, 5);
        run_spmd(Arc::clone(&p));
        assert!(p.result().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn expected_is_stable_before_run() {
        let p = InferenceProgram::random_weights(6, 2, 2, 1, 8);
        let a = p.expected();
        let b = p.expected();
        assert_eq!(a, b);
    }
}
