//! # memhier-workloads
//!
//! Instrumented SPMD implementations of the paper's four applications
//! (§5.2) plus a synthetic commercial workload:
//!
//! * **FFT** — complex 1-D six-step FFT, 64 K points, contiguous
//!   per-process partitions (SPLASH-2 kernel).
//! * **LU** — blocked dense LU factorization, 512 × 512, blocks assigned by
//!   2-D scatter decomposition (SPLASH-2 kernel).
//! * **Radix** — iterative radix sort, 1 M integers, radix 1024
//!   (SPLASH-2 kernel).
//! * **EDGE** — iterative parallel edge detection (blur / register / match
//!   phases with a barrier per iteration), 128 × 128 bitmap.
//! * **TPCC** — a tuned synthetic stream reproducing the paper's published
//!   TPC-C locality (α ≈ 1.73, β ≈ 1222.66, ρ ≈ 0.36); real TPC-C traces
//!   are proprietary (DESIGN.md substitution 3).
//!
//! Beyond the paper's set, four generators broaden the locality spectrum:
//!
//! * **Stencil4D** — QCD-style 4-D nearest-neighbor relaxation with halo
//!   exchange over slab partitions.
//! * **Stream** — touch-once streaming scan, the α → 1 corner of the
//!   stack-distance model.
//! * **GraphWalk** — pointer chase over a random single-cycle permutation:
//!   dependent loads, no spatial locality.
//! * **Inference** — batched weight-streaming MLP forward pass.
//!
//! The [`catalog`] module is the open face of this universe: a
//! string-keyed registry of [`catalog::WorkloadSpec`] trait objects with
//! typed parameter schemas, extensible at runtime by downstream crates.
//!
//! Every kernel is a *real computation* — tests check numeric results —
//! executed under the [`spmd`] harness, which runs one OS thread per
//! logical process, routes all data accesses through [`traced::TracedArray`]
//! (emitting [`memhier_sim::MemEvent`]s), and keeps the real `std::sync`
//! barriers aligned with the simulated barrier events (the engine's
//! barrier contract).
//!
//! Problem sizes are configurable; the paper sizes (§5.2) and a small fast
//! test size are provided by [`registry::Workload`].

pub mod catalog;
pub mod edge;
pub mod fft;
pub mod graphwalk;
pub mod inference;
pub mod lu;
pub mod radix;
pub mod registry;
pub mod spmd;
pub mod stencil4d;
pub mod stream;
pub mod tpcc;
pub mod traced;

pub use catalog::{
    register_workload, workload_by_key, workload_keys, workload_specs, ResolvedWorkload,
    WorkloadSpec,
};
pub use registry::{Workload, WorkloadKind};
pub use spmd::{run_spmd, SpmdCtx, SpmdProgram, TraceSink};
