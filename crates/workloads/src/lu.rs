//! The LU kernel (§5.2): blocked dense LU factorization without pivoting,
//! `B × B` blocks assigned to processes by **2-D scatter decomposition**
//! "to exploit temporal and spatial locality" — the SPLASH-2 structure.
//!
//! For each step `k`: the owner of the diagonal block factors it; owners
//! of perimeter blocks solve against it; owners of interior blocks apply
//! the rank-`B` update.  A barrier separates the three phases of a step.

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use std::sync::Arc;

/// The blocked LU program instance.
pub struct LuProgram {
    procs: usize,
    /// Matrix dimension.
    n: usize,
    /// Block dimension (divides `n`).
    b: usize,
    /// Process grid (rows, cols): `pr · pc = procs`.
    pr: usize,
    pc: usize,
    a: TracedArray<f64>,
    /// Original matrix kept for verification (untraced).
    original: Vec<f64>,
}

impl LuProgram {
    /// Build over an `n × n` matrix with `block`-sized blocks for `procs`
    /// processes; entries from `init(row, col)` (should be diagonally
    /// dominant — see [`LuProgram::random_dd`]).
    pub fn new(
        n: usize,
        block: usize,
        procs: usize,
        init: impl Fn(usize, usize) -> f64,
    ) -> Arc<Self> {
        assert!(
            n.is_multiple_of(block),
            "block size {block} must divide n = {n}"
        );
        let (pr, pc) = grid(procs);
        let mut sp = AddressSpace::default();
        let a = TracedArray::new(sp.alloc(n * n), n * n);
        let prog = LuProgram {
            procs,
            n,
            b: block,
            pr,
            pc,
            a,
            original: Vec::new(),
        };
        // Storage is block-major (each B×B block contiguous), as in the
        // real SPLASH-2 kernel — this is what prevents false sharing of
        // coherence blocks between neighboring block owners.
        let mut original = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                let v = init(r, c);
                prog.a.set_silent(prog.at(r, c), v);
                original[r * n + c] = v;
            }
        }
        Arc::new(LuProgram { original, ..prog })
    }

    /// Deterministic diagonally-dominant random matrix.
    pub fn random_dd(n: usize, block: usize, procs: usize, seed: u64) -> Arc<Self> {
        Self::new(n, block, procs, move |r, c| {
            let mut x = seed
                .wrapping_add((r * n + c) as u64)
                .wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 31;
            let v = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            if r == c {
                v + n as f64 // strong diagonal keeps the factorization stable
            } else {
                v
            }
        })
    }

    /// Owner process of block `(bi, bj)` under 2-D scatter.
    pub fn owner(&self, bi: usize, bj: usize) -> usize {
        (bi % self.pr) * self.pc + (bj % self.pc)
    }

    /// Number of blocks per side.
    pub fn nblocks(&self) -> usize {
        self.n / self.b
    }

    /// Block-major element index: block (r/B, c/B) stored contiguously,
    /// row-major within the block.
    fn at(&self, r: usize, c: usize) -> usize {
        let nbc = self.n / self.b;
        let (bi, bj) = (r / self.b, c / self.b);
        let (ri, cj) = (r % self.b, c % self.b);
        ((bi * nbc + bj) * self.b + ri) * self.b + cj
    }

    /// Untraced logical (row, col) accessor for verification.
    pub fn get_rc(&self, r: usize, c: usize) -> f64 {
        self.a.get_silent(self.at(r, c))
    }

    /// Factor the diagonal block `(k, k)` in place (unblocked LU).
    fn factor_diag(&self, ctx: &mut SpmdCtx, k: usize) {
        let b0 = k * self.b;
        for d in 0..self.b {
            let pivot = self.a.get(ctx, self.at(b0 + d, b0 + d));
            for r in d + 1..self.b {
                let l = self.a.get(ctx, self.at(b0 + r, b0 + d)) / pivot;
                self.a.set(ctx, self.at(b0 + r, b0 + d), l);
                ctx.compute(2);
                for c in d + 1..self.b {
                    let u = self.a.get(ctx, self.at(b0 + d, b0 + c));
                    let x = self.a.get(ctx, self.at(b0 + r, b0 + c));
                    self.a.set(ctx, self.at(b0 + r, b0 + c), x - l * u);
                    ctx.compute(2);
                }
            }
        }
    }

    /// Column-panel block `(bi, k)`: solve `A_ik ← A_ik · U_kk⁻¹`.
    fn solve_col(&self, ctx: &mut SpmdCtx, bi: usize, k: usize) {
        let (r0, c0, d0) = (bi * self.b, k * self.b, k * self.b);
        for r in 0..self.b {
            for d in 0..self.b {
                let u = self.a.get(ctx, self.at(d0 + d, c0 + d));
                let mut x = self.a.get(ctx, self.at(r0 + r, c0 + d));
                x /= u;
                self.a.set(ctx, self.at(r0 + r, c0 + d), x);
                ctx.compute(2);
                for c in d + 1..self.b {
                    let ukc = self.a.get(ctx, self.at(d0 + d, c0 + c));
                    let y = self.a.get(ctx, self.at(r0 + r, c0 + c));
                    self.a.set(ctx, self.at(r0 + r, c0 + c), y - x * ukc);
                    ctx.compute(2);
                }
            }
        }
    }

    /// Row-panel block `(k, bj)`: solve `A_kj ← L_kk⁻¹ · A_kj`.
    fn solve_row(&self, ctx: &mut SpmdCtx, k: usize, bj: usize) {
        let (r0, c0, d0) = (k * self.b, bj * self.b, k * self.b);
        for c in 0..self.b {
            for d in 0..self.b {
                let x = self.a.get(ctx, self.at(r0 + d, c0 + c));
                ctx.compute(1);
                for r in d + 1..self.b {
                    let l = self.a.get(ctx, self.at(d0 + r, r0 + d));
                    let y = self.a.get(ctx, self.at(r0 + r, c0 + c));
                    self.a.set(ctx, self.at(r0 + r, c0 + c), y - l * x);
                    ctx.compute(2);
                }
            }
        }
    }

    /// Interior update `A_ij ← A_ij − A_ik · A_kj`.
    fn update(&self, ctx: &mut SpmdCtx, bi: usize, bj: usize, k: usize) {
        let (r0, c0) = (bi * self.b, bj * self.b);
        let (lk, uk) = (k * self.b, k * self.b);
        for r in 0..self.b {
            for d in 0..self.b {
                let l = self.a.get(ctx, self.at(r0 + r, lk + d));
                ctx.compute(1);
                for c in 0..self.b {
                    let u = self.a.get(ctx, self.at(uk + d, c0 + c));
                    let x = self.a.get(ctx, self.at(r0 + r, c0 + c));
                    self.a.set(ctx, self.at(r0 + r, c0 + c), x - l * u);
                    ctx.compute(2);
                }
            }
        }
    }

    /// Reconstruct `L · U` from the factored matrix (untraced) and return
    /// the max abs deviation from the original.
    pub fn verify_error(&self) -> f64 {
        let n = self.n;
        let mut max = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                // (L·U)[r][c] = Σ_{k ≤ min(r,c)} L[r][k]·U[k][c] with unit
                // diagonal L.
                let mut s = 0.0;
                for k in 0..=r.min(c) {
                    let l = if k == r { 1.0 } else { self.get_rc(r, k) };
                    s += l * self.get_rc(k, c);
                }
                max = max.max((s - self.original[r * n + c]).abs());
            }
        }
        max
    }
}

/// Closest-to-square process grid with `pr·pc = procs`.
fn grid(procs: usize) -> (usize, usize) {
    assert!(procs >= 1);
    let mut pr = (procs as f64).sqrt() as usize;
    while !procs.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr, procs / pr)
}

impl SpmdProgram for LuProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let nb = self.nblocks();
        for k in 0..nb {
            if self.owner(k, k) == pid {
                self.factor_diag(ctx, k);
            }
            ctx.barrier();
            for bi in k + 1..nb {
                if self.owner(bi, k) == pid {
                    self.solve_col(ctx, bi, k);
                }
            }
            for bj in k + 1..nb {
                if self.owner(k, bj) == pid {
                    self.solve_row(ctx, k, bj);
                }
            }
            ctx.barrier();
            for bi in k + 1..nb {
                for bj in k + 1..nb {
                    if self.owner(bi, bj) == pid {
                        self.update(ctx, bi, bj, k);
                    }
                }
            }
            ctx.barrier();
        }
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        // Home each block-row stripe of the matrix at the process owning
        // the most blocks in it (approximation: row-block → grid row).
        let nb = self.nblocks();
        let mut v = Vec::new();
        for bi in 0..nb {
            let owner = self.owner(bi, bi % self.pc.max(1));
            let lo = bi * self.b * self.n;
            let hi = (bi + 1) * self.b * self.n;
            v.push((self.a.addr_of(lo), self.a.addr_of(hi), owner));
        }
        v
    }

    fn name(&self) -> &str {
        "LU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn grid_shapes() {
        assert_eq!(grid(1), (1, 1));
        assert_eq!(grid(2), (1, 2));
        assert_eq!(grid(4), (2, 2));
        assert_eq!(grid(8), (2, 4));
        assert_eq!(grid(16), (4, 4));
    }

    #[test]
    fn serial_factorization_correct() {
        let p = LuProgram::random_dd(16, 4, 1, 3);
        run_spmd(Arc::clone(&p));
        let err = p.verify_error();
        assert!(err < 1e-9, "LU reconstruction error {err}");
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = LuProgram::random_dd(16, 4, 1, 9);
        run_spmd(Arc::clone(&serial));
        let expect = serial.a.snapshot();
        for procs in [2, 4] {
            let par = LuProgram::random_dd(16, 4, procs, 9);
            run_spmd(Arc::clone(&par));
            let got = par.a.snapshot();
            let err = expect
                .iter()
                .zip(&got)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(err < 1e-10, "procs {procs}: divergence {err}");
        }
    }

    #[test]
    fn larger_parallel_factorization_correct() {
        let p = LuProgram::random_dd(32, 8, 4, 11);
        run_spmd(Arc::clone(&p));
        assert!(p.verify_error() < 1e-8);
    }

    #[test]
    fn scatter_ownership_balanced() {
        let p = LuProgram::random_dd(32, 4, 4, 1);
        let nb = p.nblocks();
        let mut counts = vec![0usize; 4];
        for bi in 0..nb {
            for bj in 0..nb {
                counts[p.owner(bi, bj)] += 1;
            }
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert_eq!(min, max, "2-D scatter must balance: {counts:?}");
    }

    #[test]
    fn rho_is_memory_heavier_than_fft() {
        let c = run_spmd(LuProgram::random_dd(32, 8, 2, 5));
        assert!(c.rho() > 0.2, "rho {}", c.rho());
        assert!(c.rho() < 0.9);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_bad_block() {
        LuProgram::new(10, 3, 1, |_, _| 1.0);
    }
}
