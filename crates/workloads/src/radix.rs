//! The Radix sort kernel (§5.2): iterative parallel radix sort of
//! integers, "one iteration for each radix-r digit of the keys"
//! (SPLASH-2 / NAS style).  Radix 1024 over 1 M integers at paper size.
//!
//! Each iteration: (1) every process histograms the digit of its key
//! chunk; (2) process 0 turns the `P × R` histogram matrix into global
//! starting offsets (sequentially, as the SPLASH-2 kernel's prefix phase
//! does for small `P·R`); (3) every process permutes its keys into the
//! destination array at its offsets.  The permute phase's scattered remote
//! writes are what gives Radix the worst locality of the four kernels
//! (Table 2: α = 1.14, β = 120.84).

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use std::sync::Arc;

/// The parallel radix-sort program instance.
pub struct RadixProgram {
    procs: usize,
    n: usize,
    /// Radix (a power of two).
    radix: usize,
    /// Bits per digit.
    bits: u32,
    /// Number of digit passes to cover `key_bits`.
    passes: u32,
    /// Maximum key value is `2^key_bits − 1`.
    key_bits: u32,
    src: TracedArray<u64>,
    dst: TracedArray<u64>,
    /// `P × R` histogram / offset matrix; row `p` belongs to process `p`.
    hist: TracedArray<u64>,
    /// Input snapshot for verification.
    input: Vec<u64>,
}

impl RadixProgram {
    /// Build with `keys` random keys of `key_bits` bits, radix `radix`,
    /// for `procs` processes (must divide `keys`).
    pub fn new(keys: usize, radix: usize, key_bits: u32, procs: usize, seed: u64) -> Arc<Self> {
        assert!(radix.is_power_of_two() && radix >= 2);
        assert!(
            keys.is_multiple_of(procs),
            "process count must divide key count"
        );
        let bits = radix.trailing_zeros();
        let passes = key_bits.div_ceil(bits);
        let mut sp = AddressSpace::default();
        let src = TracedArray::new_with(sp.alloc(keys), keys, |i| {
            let mut x = seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 29;
            x = x.wrapping_mul(0xBF58476D1CE4E5B9);
            x >> (64 - key_bits)
        });
        let dst = TracedArray::new(sp.alloc(keys), keys);
        let hist = TracedArray::new(sp.alloc(procs * radix), procs * radix);
        let input = src.snapshot();
        Arc::new(RadixProgram {
            procs,
            n: keys,
            radix,
            bits,
            passes,
            key_bits,
            src,
            dst,
            hist,
            input,
        })
    }

    fn chunk_of(&self, pid: usize) -> std::ops::Range<usize> {
        let per = self.n / self.procs;
        pid * per..(pid + 1) * per
    }

    /// The pass's source and destination arrays (ping-pong by parity).
    fn arrays(&self, pass: u32) -> (&TracedArray<u64>, &TracedArray<u64>) {
        if pass.is_multiple_of(2) {
            (&self.src, &self.dst)
        } else {
            (&self.dst, &self.src)
        }
    }

    /// Where the sorted result lives after all passes.
    pub fn result(&self) -> Vec<u64> {
        let (_, out) = self.arrays(self.passes - 1);
        out.snapshot()
    }

    /// The saved input.
    pub fn input(&self) -> &[u64] {
        &self.input
    }

    /// Number of digit passes.
    pub fn passes(&self) -> u32 {
        self.passes
    }

    /// Key width in bits (keys are `< 2^key_bits`).
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }
}

impl SpmdProgram for RadixProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let r = self.radix;
        for pass in 0..self.passes {
            let (from, to) = self.arrays(pass);
            let shift = pass * self.bits;
            let mask = (r - 1) as u64;

            // Phase 1: zero own histogram row, count digits of own chunk.
            for d in 0..r {
                self.hist.set(ctx, pid * r + d, 0);
            }
            for i in self.chunk_of(pid) {
                let k = from.get(ctx, i);
                let d = ((k >> shift) & mask) as usize;
                let c = self.hist.get(ctx, pid * r + d);
                self.hist.set(ctx, pid * r + d, c + 1);
                ctx.compute(3);
            }
            ctx.barrier();

            // Phase 2: process 0 converts counts to starting offsets:
            // offset[p][d] = Σ_{d'<d} total[d'] + Σ_{p'<p} count[p'][d].
            if pid == 0 {
                let mut base = 0u64;
                for d in 0..r {
                    let mut col = 0u64;
                    for p in 0..self.procs {
                        let c = self.hist.get(ctx, p * r + d);
                        self.hist.set(ctx, p * r + d, base + col);
                        col += c;
                        ctx.compute(2);
                    }
                    base += col;
                }
            }
            ctx.barrier();

            // Phase 3: permute own chunk into the destination (stable).
            // Cursors start at the offsets computed in phase 2; they are
            // our own histogram row, so reads/writes stay in our partition.
            for i in self.chunk_of(pid) {
                let k = from.get(ctx, i);
                let d = ((k >> shift) & mask) as usize;
                let pos = self.hist.get(ctx, pid * r + d);
                self.hist.set(ctx, pid * r + d, pos + 1);
                to.set(ctx, pos as usize, k);
                ctx.compute(4);
            }
            ctx.barrier();
        }
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        let mut v = Vec::new();
        let per = self.n / self.procs;
        for pid in 0..self.procs {
            let (lo, hi) = (pid * per, (pid + 1) * per);
            v.push((self.src.addr_of(lo), self.src.addr_of(hi), pid));
            v.push((self.dst.addr_of(lo), self.dst.addr_of(hi), pid));
            let r = self.radix;
            v.push((
                self.hist.addr_of(pid * r),
                self.hist.addr_of((pid + 1) * r),
                pid,
            ));
        }
        v
    }

    fn name(&self) -> &str {
        "Radix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    fn is_sorted(v: &[u64]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn serial_sorts() {
        let p = RadixProgram::new(1024, 16, 12, 1, 42);
        run_spmd(Arc::clone(&p));
        let out = p.result();
        assert!(is_sorted(&out));
        let mut expect = p.input().to_vec();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn parallel_sorts_identically() {
        for procs in [2, 4, 8] {
            let p = RadixProgram::new(1024, 16, 12, procs, 7);
            run_spmd(Arc::clone(&p));
            let out = p.result();
            let mut expect = p.input().to_vec();
            expect.sort_unstable();
            assert_eq!(out, expect, "procs = {procs}");
        }
    }

    #[test]
    fn paper_radix_pass_count() {
        // Radix 1024 (10 bits) over 20-bit keys: 2 passes.
        let p = RadixProgram::new(1024, 1024, 20, 4, 1);
        assert_eq!(p.passes(), 2);
        // 30-bit keys would need 3.
        let p = RadixProgram::new(1024, 1024, 30, 4, 1);
        assert_eq!(p.passes(), 3);
    }

    #[test]
    fn odd_pass_count_result_location() {
        // 1 pass: result must be read from dst.
        let p = RadixProgram::new(256, 256, 8, 2, 3);
        assert_eq!(p.passes(), 1);
        run_spmd(Arc::clone(&p));
        assert!(is_sorted(&p.result()));
    }

    #[test]
    fn rho_is_memory_bound() {
        let c = run_spmd(RadixProgram::new(2048, 64, 12, 2, 5));
        // Radix is the most memory-bound scientific kernel (paper: 0.37).
        assert!(c.rho() > 0.3, "rho = {}", c.rho());
    }

    #[test]
    fn keys_respect_bit_width() {
        let p = RadixProgram::new(512, 16, 10, 1, 9);
        assert!(p.input().iter().all(|&k| k < 1 << 10));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_chunks() {
        RadixProgram::new(1000, 16, 10, 3, 1);
    }
}
