//! Workload registry: the paper's problem sizes (§5.2), scaled variants,
//! and a uniform instantiation interface for the experiment harness.

use crate::edge::EdgeProgram;
use crate::fft::FftProgram;
use crate::graphwalk::GraphWalkProgram;
use crate::inference::InferenceProgram;
use crate::lu::LuProgram;
use crate::radix::RadixProgram;
use crate::spmd::SpmdProgram;
use crate::stencil4d::Stencil4dProgram;
use crate::stream::StreamProgram;
use crate::tpcc::TpccProgram;
use std::sync::Arc;

/// The built-in workloads.
///
/// `#[non_exhaustive]`: more kernels may be added; match with a wildcard.
/// Out-of-tree generators enter through [`crate::catalog::register_workload`]
/// rather than this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WorkloadKind {
    /// Six-step complex 1-D FFT.
    Fft,
    /// Blocked dense LU factorization.
    Lu,
    /// Iterative radix sort.
    Radix,
    /// Iterative edge detection.
    Edge,
    /// Synthetic TPC-C-like commercial workload.
    Tpcc,
    /// QCD-style 4-D nearest-neighbor stencil with halo exchange.
    Stencil4D,
    /// Streaming scan: touch-once locality (α → 1).
    Stream,
    /// Pointer-chasing traversal of a random single-cycle permutation.
    GraphWalk,
    /// Batched weight-streaming neural-network inference.
    Inference,
}

impl WorkloadKind {
    /// The four Table-2 kernels, in paper order.
    pub const PAPER: [WorkloadKind; 4] = [
        WorkloadKind::Fft,
        WorkloadKind::Lu,
        WorkloadKind::Radix,
        WorkloadKind::Edge,
    ];

    /// Every built-in workload, paper kernels first.
    pub const ALL: [WorkloadKind; 9] = [
        WorkloadKind::Fft,
        WorkloadKind::Lu,
        WorkloadKind::Radix,
        WorkloadKind::Edge,
        WorkloadKind::Tpcc,
        WorkloadKind::Stencil4D,
        WorkloadKind::Stream,
        WorkloadKind::GraphWalk,
        WorkloadKind::Inference,
    ];

    /// Canonical display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Fft => "FFT",
            WorkloadKind::Lu => "LU",
            WorkloadKind::Radix => "Radix",
            WorkloadKind::Edge => "EDGE",
            WorkloadKind::Tpcc => "TPC-C",
            WorkloadKind::Stencil4D => "Stencil4D",
            WorkloadKind::Stream => "Stream",
            WorkloadKind::GraphWalk => "GraphWalk",
            WorkloadKind::Inference => "Inference",
        }
    }
}

/// Serializes as the canonical display name (`"FFT"`, `"TPC-C"`, ...),
/// matching what the CLI flags and `memhierd` request bodies spell.
impl serde::Serialize for WorkloadKind {
    fn to_json_value(&self) -> serde::__private::Value {
        serde::__private::Value::String(self.name().to_string())
    }
}

impl serde::Deserialize for WorkloadKind {
    fn from_json_value(v: serde::__private::Value) -> Result<Self, String> {
        let name = v.as_str().ok_or("workload must be a string")?;
        match name.to_ascii_uppercase().as_str() {
            "FFT" => Ok(WorkloadKind::Fft),
            "LU" => Ok(WorkloadKind::Lu),
            "RADIX" => Ok(WorkloadKind::Radix),
            "EDGE" => Ok(WorkloadKind::Edge),
            "TPC-C" | "TPCC" => Ok(WorkloadKind::Tpcc),
            "STENCIL4D" | "STENCIL" => Ok(WorkloadKind::Stencil4D),
            "STREAM" => Ok(WorkloadKind::Stream),
            "GRAPHWALK" | "GRAPH" => Ok(WorkloadKind::GraphWalk),
            "INFERENCE" | "INFER" => Ok(WorkloadKind::Inference),
            other => Err(format!("unknown workload `{other}`")),
        }
    }
}

/// A fully-specified workload: kind plus problem size.
///
/// `Hash` + `Eq` make a `Workload` (with a granularity) directly usable
/// as a characterization-cache key in the sweep runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// FFT over `points` complex points (a power of 4).
    Fft {
        /// Total complex points.
        points: usize,
    },
    /// LU of an `n × n` matrix in `block × block` blocks.
    Lu {
        /// Matrix dimension.
        n: usize,
        /// Block dimension.
        block: usize,
    },
    /// Radix sort of `keys` integers of `key_bits` bits with digit `radix`.
    Radix {
        /// Number of keys.
        keys: usize,
        /// Digit radix (power of two).
        radix: usize,
        /// Key width in bits.
        key_bits: u32,
    },
    /// Edge detection on a `dim × dim` image for `iterations` rounds.
    Edge {
        /// Image dimension.
        dim: usize,
        /// Blur/register/match iterations.
        iterations: usize,
    },
    /// Synthetic TPC-C: `db_cells` cells per region, `refs_per_proc`
    /// accesses per process.
    Tpcc {
        /// Cells per database region.
        db_cells: usize,
        /// References each process issues.
        refs_per_proc: usize,
    },
    /// 4-D stencil sweep over an `l⁴` lattice for `iterations` rounds.
    Stencil4D {
        /// Lattice extent per dimension.
        l: usize,
        /// Relaxation sweeps.
        iterations: usize,
    },
    /// Streaming scan over `elems` cells for `passes` passes.
    Stream {
        /// Elements per array.
        elems: usize,
        /// Scan passes.
        passes: usize,
    },
    /// Pointer chase over a `nodes`-cycle for `steps` hops per process.
    GraphWalk {
        /// Permutation size.
        nodes: usize,
        /// Hops each process takes.
        steps: usize,
    },
    /// Forward inference: `layers` of `dim × dim` weights over `batch` rows.
    Inference {
        /// Layer width.
        dim: usize,
        /// Layer count.
        layers: usize,
        /// Batch rows.
        batch: usize,
    },
}

impl Workload {
    /// The paper's §5.2 problem sizes: FFT 64 K points, LU 512 × 512,
    /// Radix 1 M integers radix 1024, EDGE 128 × 128.
    pub fn paper(kind: WorkloadKind) -> Workload {
        match kind {
            WorkloadKind::Fft => Workload::Fft { points: 64 * 1024 },
            WorkloadKind::Lu => Workload::Lu { n: 512, block: 16 },
            WorkloadKind::Radix => Workload::Radix {
                keys: 1024 * 1024,
                radix: 1024,
                key_bits: 20,
            },
            WorkloadKind::Edge => Workload::Edge {
                dim: 128,
                iterations: 4,
            },
            WorkloadKind::Tpcc => Workload::Tpcc {
                db_cells: 1 << 17,
                refs_per_proc: 500_000,
            },
            WorkloadKind::Stencil4D => Workload::Stencil4D {
                l: 16,
                iterations: 8,
            },
            WorkloadKind::Stream => Workload::Stream {
                elems: 1024 * 1024,
                passes: 4,
            },
            WorkloadKind::GraphWalk => Workload::GraphWalk {
                nodes: 256 * 1024,
                steps: 500_000,
            },
            WorkloadKind::Inference => Workload::Inference {
                dim: 128,
                layers: 4,
                batch: 32,
            },
        }
    }

    /// Small sizes for fast tests and CI (same structure, ~100× less work).
    pub fn small(kind: WorkloadKind) -> Workload {
        match kind {
            WorkloadKind::Fft => Workload::Fft { points: 4096 },
            WorkloadKind::Lu => Workload::Lu { n: 64, block: 8 },
            WorkloadKind::Radix => Workload::Radix {
                keys: 16 * 1024,
                radix: 256,
                key_bits: 16,
            },
            WorkloadKind::Edge => Workload::Edge {
                dim: 32,
                iterations: 2,
            },
            WorkloadKind::Tpcc => Workload::Tpcc {
                db_cells: 1 << 12,
                refs_per_proc: 20_000,
            },
            WorkloadKind::Stencil4D => Workload::Stencil4D {
                l: 8,
                iterations: 2,
            },
            WorkloadKind::Stream => Workload::Stream {
                elems: 64 * 1024,
                passes: 2,
            },
            WorkloadKind::GraphWalk => Workload::GraphWalk {
                nodes: 16 * 1024,
                steps: 20_000,
            },
            WorkloadKind::Inference => Workload::Inference {
                dim: 48,
                layers: 2,
                batch: 16,
            },
        }
    }

    /// Medium sizes for the experiment harness's default mode — working
    /// sets exceed the studied cache sizes (so every hierarchy level is
    /// exercised) while a 15-configuration × 4-application sweep stays in
    /// the minutes range.
    pub fn medium(kind: WorkloadKind) -> Workload {
        match kind {
            WorkloadKind::Fft => Workload::Fft { points: 16 * 1024 }, // 512 KB data
            WorkloadKind::Lu => Workload::Lu { n: 192, block: 16 },   // 288 KB matrix
            WorkloadKind::Radix => {
                Workload::Radix {
                    keys: 128 * 1024,
                    radix: 1024,
                    key_bits: 20,
                } // 2 MB
            }
            WorkloadKind::Edge => Workload::Edge {
                dim: 128,
                iterations: 4,
            }, // paper size
            WorkloadKind::Tpcc => Workload::Tpcc {
                db_cells: 1 << 16,
                refs_per_proc: 100_000,
            },
            WorkloadKind::Stencil4D => Workload::Stencil4D {
                l: 16,
                iterations: 2,
            }, // 1 MB of field data
            WorkloadKind::Stream => Workload::Stream {
                elems: 256 * 1024,
                passes: 2,
            }, // 4 MB
            WorkloadKind::GraphWalk => Workload::GraphWalk {
                nodes: 64 * 1024,
                steps: 100_000,
            }, // 1 MB
            WorkloadKind::Inference => Workload::Inference {
                dim: 96,
                layers: 3,
                batch: 16,
            }, // 216 KB of weights
        }
    }

    /// Which workload this is.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            Workload::Fft { .. } => WorkloadKind::Fft,
            Workload::Lu { .. } => WorkloadKind::Lu,
            Workload::Radix { .. } => WorkloadKind::Radix,
            Workload::Edge { .. } => WorkloadKind::Edge,
            Workload::Tpcc { .. } => WorkloadKind::Tpcc,
            Workload::Stencil4D { .. } => WorkloadKind::Stencil4D,
            Workload::Stream { .. } => WorkloadKind::Stream,
            Workload::GraphWalk { .. } => WorkloadKind::GraphWalk,
            Workload::Inference { .. } => WorkloadKind::Inference,
        }
    }

    /// Whether this size can be partitioned across `processes` SPMD
    /// processes — the kernels' divisibility constraints, queryable
    /// without instantiating: FFT needs `processes | √points`, Radix
    /// `processes | keys`, EDGE `processes | dim` (rows of the image);
    /// LU and TPC-C accept any positive count.
    ///
    /// Config planners (the fleet optimizer, sweep assemblers) use this
    /// to pass over grid points no decomposition exists for instead of
    /// tripping [`instantiate`](Self::instantiate)'s assertions.
    pub fn supports_processes(&self, processes: usize) -> bool {
        if processes == 0 {
            return false;
        }
        match *self {
            Workload::Fft { points } => {
                let m = 1usize << (points.trailing_zeros() / 2);
                m.is_multiple_of(processes)
            }
            Workload::Lu { .. } => true,
            Workload::Radix { keys, .. } => keys.is_multiple_of(processes),
            Workload::Edge { dim, .. } => dim.is_multiple_of(processes),
            Workload::Tpcc { .. } => true,
            Workload::Stencil4D { l, .. } => l.is_multiple_of(processes),
            Workload::Stream { elems, .. } => elems.is_multiple_of(processes),
            Workload::GraphWalk { nodes, .. } => processes <= nodes,
            Workload::Inference { batch, .. } => batch.is_multiple_of(processes),
        }
    }

    /// Instantiate for `processes` SPMD processes with a fixed seed.
    ///
    /// Panics if `processes` is incompatible with the size (each kernel
    /// documents its divisibility constraint; probe with
    /// [`supports_processes`](Self::supports_processes) first when the
    /// count comes from a searched grid rather than a curated config).
    pub fn instantiate(&self, processes: usize) -> Arc<dyn SpmdProgram> {
        let seed = 0xC0FFEE;
        match *self {
            Workload::Fft { points } => FftProgram::random_input(points, processes, seed),
            Workload::Lu { n, block } => LuProgram::random_dd(n, block, processes, seed),
            Workload::Radix {
                keys,
                radix,
                key_bits,
            } => RadixProgram::new(keys, radix, key_bits, processes, seed),
            Workload::Edge { dim, iterations } => {
                EdgeProgram::synthetic(dim, iterations, processes)
            }
            Workload::Tpcc {
                db_cells,
                refs_per_proc,
            } => TpccProgram::new(db_cells, refs_per_proc, processes, seed),
            Workload::Stencil4D { l, iterations } => {
                Stencil4dProgram::random_field(l, iterations, processes, seed)
            }
            Workload::Stream { elems, passes } => StreamProgram::new(elems, passes, processes),
            Workload::GraphWalk { nodes, steps } => {
                GraphWalkProgram::random_cycle(nodes, steps, processes, seed)
            }
            Workload::Inference { dim, layers, batch } => {
                InferenceProgram::random_weights(dim, layers, batch, processes, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn paper_sizes_match_section_5_2() {
        assert_eq!(
            Workload::paper(WorkloadKind::Fft),
            Workload::Fft { points: 65536 }
        );
        assert_eq!(
            Workload::paper(WorkloadKind::Lu),
            Workload::Lu { n: 512, block: 16 }
        );
        assert_eq!(
            Workload::paper(WorkloadKind::Radix),
            Workload::Radix {
                keys: 1_048_576,
                radix: 1024,
                key_bits: 20
            }
        );
        assert_eq!(
            Workload::paper(WorkloadKind::Edge),
            Workload::Edge {
                dim: 128,
                iterations: 4
            }
        );
    }

    #[test]
    fn kinds_roundtrip() {
        for k in WorkloadKind::ALL {
            assert_eq!(Workload::paper(k).kind(), k);
            assert_eq!(Workload::small(k).kind(), k);
            assert_eq!(Workload::medium(k).kind(), k);
        }
    }

    #[test]
    fn supports_processes_matches_kernel_constraints() {
        // small FFT: 4096 points → m = 64 rows; small Radix: 16 K keys;
        // small EDGE: 32-row image.
        let fft = Workload::small(WorkloadKind::Fft);
        assert!(fft.supports_processes(64) && !fft.supports_processes(3));
        let radix = Workload::small(WorkloadKind::Radix);
        assert!(radix.supports_processes(8) && !radix.supports_processes(6));
        let edge = Workload::small(WorkloadKind::Edge);
        assert!(edge.supports_processes(16) && !edge.supports_processes(5));
        for k in [WorkloadKind::Lu, WorkloadKind::Tpcc] {
            assert!(Workload::small(k).supports_processes(7));
        }
        for k in WorkloadKind::PAPER {
            assert!(!Workload::small(k).supports_processes(0));
        }
    }

    #[test]
    fn every_small_workload_runs_on_1_2_4_procs() {
        for k in WorkloadKind::ALL {
            for procs in [1usize, 2, 4] {
                let p = Workload::small(k).instantiate(procs);
                assert_eq!(p.processes(), procs);
                let c = run_spmd(p);
                assert!(c.mem_refs() > 0, "{k:?} on {procs} procs produced no refs");
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(WorkloadKind::Fft.name(), "FFT");
        assert_eq!(WorkloadKind::Tpcc.name(), "TPC-C");
        assert_eq!(WorkloadKind::Stencil4D.name(), "Stencil4D");
        assert_eq!(WorkloadKind::GraphWalk.name(), "GraphWalk");
        assert_eq!(WorkloadKind::PAPER.len(), 4);
        assert_eq!(WorkloadKind::ALL.len(), 9);
    }

    #[test]
    fn new_kind_spellings_deserialize() {
        use serde::{__private::Value, Deserialize};
        for (spelling, kind) in [
            ("stencil4d", WorkloadKind::Stencil4D),
            ("STENCIL", WorkloadKind::Stencil4D),
            ("Stream", WorkloadKind::Stream),
            ("graph", WorkloadKind::GraphWalk),
            ("GraphWalk", WorkloadKind::GraphWalk),
            ("INFER", WorkloadKind::Inference),
            ("Inference", WorkloadKind::Inference),
        ] {
            let v = Value::String(spelling.to_string());
            assert_eq!(WorkloadKind::from_json_value(v), Ok(kind), "{spelling}");
        }
    }

    #[test]
    fn new_workload_divisibility() {
        let st = Workload::small(WorkloadKind::Stencil4D);
        assert!(st.supports_processes(8) && !st.supports_processes(3));
        let s = Workload::small(WorkloadKind::Stream);
        assert!(s.supports_processes(16) && !s.supports_processes(7));
        let g = Workload::small(WorkloadKind::GraphWalk);
        assert!(g.supports_processes(5) && !g.supports_processes(0));
        let i = Workload::small(WorkloadKind::Inference);
        assert!(i.supports_processes(8) && !i.supports_processes(3));
    }
}
