//! The SPMD execution harness.
//!
//! A workload implements [`SpmdProgram`]; the harness runs one OS thread
//! per logical process.  Each thread owns an [`SpmdCtx`] that (a) batches
//! the process's [`MemEvent`]s toward a consumer and (b) wraps the real
//! `std::sync::Barrier` so the simulated barrier event is always emitted
//! **and flushed** before the thread blocks — the deadlock-freedom contract
//! the simulation engine relies on.
//!
//! Three consumption modes:
//! * [`run_spmd`] — run to completion discarding events (functional tests);
//! * [`collect_events`] — gather every process's events in memory
//!   (small traces);
//! * [`stream_spmd`] — stream batches through bounded channels to a
//!   caller-supplied consumer (the simulator engine or a trace analyzer).

use crate::traced::CELL_BYTES;
use crossbeam::channel::{bounded, Receiver, Sender};
use memhier_sim::MemEvent;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Barrier};

/// Counters each process accumulates (the inputs to ρ and the barrier
/// rate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcCounters {
    /// Loads.
    pub reads: u64,
    /// Stores.
    pub writes: u64,
    /// Non-memory instructions.
    pub compute: u64,
    /// Barriers crossed.
    pub barriers: u64,
}

impl ProcCounters {
    /// Memory references.
    pub fn mem_refs(&self) -> u64 {
        self.reads + self.writes
    }
    /// Total instructions `m + M`.
    pub fn total_instructions(&self) -> u64 {
        self.mem_refs() + self.compute
    }
    /// `ρ = M/(m+M)`.
    pub fn rho(&self) -> f64 {
        let t = self.total_instructions();
        if t == 0 {
            0.0
        } else {
            self.mem_refs() as f64 / t as f64
        }
    }
    /// Merge another process's counters.
    pub fn merge(&mut self, o: &ProcCounters) {
        self.reads += o.reads;
        self.writes += o.writes;
        self.compute += o.compute;
        self.barriers += o.barriers;
    }
}

/// Where a context sends its finished batches.
pub enum TraceSink {
    /// Drop events (functional testing).
    Discard,
    /// Keep them all in memory.
    Collect(Vec<MemEvent>),
    /// Stream batches through a bounded channel.
    Channel(Sender<Vec<MemEvent>>),
}

/// Per-process execution context: event emission + barrier + counters.
pub struct SpmdCtx {
    pid: usize,
    sink: TraceSink,
    batch: Vec<MemEvent>,
    barrier: Option<Arc<Barrier>>,
    /// Running counters.
    pub counters: ProcCounters,
}

/// Events per batch before a flush (channel mode).
const BATCH: usize = 4096;

impl SpmdCtx {
    /// Build a context for process `pid`.
    pub fn new(pid: usize, sink: TraceSink, barrier: Option<Arc<Barrier>>) -> Self {
        SpmdCtx {
            pid,
            sink,
            batch: Vec::with_capacity(BATCH),
            barrier,
            counters: ProcCounters::default(),
        }
    }

    /// This process's id.
    pub fn pid(&self) -> usize {
        self.pid
    }

    fn push(&mut self, e: MemEvent) {
        self.batch.push(e);
        if self.batch.len() >= BATCH {
            self.flush();
        }
    }

    /// Emit a load of `addr`.
    pub fn read(&mut self, addr: u64) {
        self.counters.reads += 1;
        self.push(MemEvent::Read(addr));
    }

    /// Emit a store to `addr`.
    pub fn write(&mut self, addr: u64) {
        self.counters.writes += 1;
        self.push(MemEvent::Write(addr));
    }

    /// Account `k` non-memory instructions (coalesced with a preceding
    /// compute event when possible).
    pub fn compute(&mut self, k: u32) {
        if k == 0 {
            return;
        }
        self.counters.compute += k as u64;
        if let Some(MemEvent::Compute(prev)) = self.batch.last_mut() {
            if let Some(sum) = prev.checked_add(k) {
                *prev = sum;
                return;
            }
        }
        self.push(MemEvent::Compute(k));
    }

    /// Cross a barrier: emit the simulated barrier, flush, then block on
    /// the real barrier (in that order — the engine's deadlock contract).
    pub fn barrier(&mut self) {
        self.counters.barriers += 1;
        self.push(MemEvent::Barrier);
        self.flush();
        if let Some(b) = &self.barrier {
            b.wait();
        }
    }

    /// Flush buffered events to the sink.
    pub fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(BATCH));
        match &mut self.sink {
            TraceSink::Discard => {}
            TraceSink::Collect(v) => v.extend(batch),
            TraceSink::Channel(tx) => {
                // The engine consuming the far end has ended early only if
                // the simulation was aborted; dropping the rest is correct.
                let _ = tx.send(batch);
            }
        }
    }

    /// Finish: flush and extract counters (and collected events).
    fn finish(mut self) -> (ProcCounters, Vec<MemEvent>) {
        self.flush();
        let events = match self.sink {
            TraceSink::Collect(v) => v,
            _ => Vec::new(),
        };
        (self.counters, events)
    }
}

/// A bulk-synchronous SPMD program over instrumented arrays.
pub trait SpmdProgram: Send + Sync + 'static {
    /// Number of logical processes this instance was built for.
    fn processes(&self) -> usize;
    /// Execute process `pid`'s share of the computation.
    fn run(&self, pid: usize, ctx: &mut SpmdCtx);
    /// Address partitions `(start, end_exclusive, owner_pid)` for home-node
    /// assignment; empty = interleaved homes.
    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        Vec::new()
    }
    /// Human-readable name.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Run every process with discarded traces; returns merged counters.
/// This is the functional-correctness path (fast — no event traffic).
pub fn run_spmd<P: SpmdProgram + ?Sized>(program: Arc<P>) -> ProcCounters {
    let n = program.processes();
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|pid| {
            let p = Arc::clone(&program);
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut ctx = SpmdCtx::new(pid, TraceSink::Discard, Some(b));
                p.run(pid, &mut ctx);
                ctx.finish().0
            })
        })
        .collect();
    let mut total = ProcCounters::default();
    for h in handles {
        total.merge(&h.join().expect("spmd process panicked"));
    }
    total
}

/// Run every process collecting full event lists (small problem sizes
/// only).  Returns per-process `(events, counters)`.
pub fn collect_events<P: SpmdProgram + ?Sized>(
    program: Arc<P>,
) -> Vec<(Vec<MemEvent>, ProcCounters)> {
    let n = program.processes();
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|pid| {
            let p = Arc::clone(&program);
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut ctx = SpmdCtx::new(pid, TraceSink::Collect(Vec::new()), Some(b));
                p.run(pid, &mut ctx);
                let (c, e) = ctx.finish();
                (e, c)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("spmd process panicked"))
        .collect()
}

/// Spawn the program's processes streaming into bounded channels; hand the
/// receivers to `consume` on the calling thread; join and return merged
/// counters together with `consume`'s result.
///
/// `consume` must keep draining all channels until they disconnect (the
/// simulation engine and the trace analyzer both do).
pub fn stream_spmd<P, R>(
    program: Arc<P>,
    consume: impl FnOnce(Vec<Receiver<Vec<MemEvent>>>) -> R,
) -> (R, ProcCounters)
where
    P: SpmdProgram + ?Sized,
{
    let n = program.processes();
    let barrier = Arc::new(Barrier::new(n));
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<Vec<MemEvent>>(64);
        txs.push(tx);
        rxs.push(rx);
    }
    let handles: Vec<_> = txs
        .into_iter()
        .enumerate()
        .map(|(pid, tx)| {
            let p = Arc::clone(&program);
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut ctx = SpmdCtx::new(pid, TraceSink::Channel(tx), Some(b));
                p.run(pid, &mut ctx);
                ctx.finish().0
            })
        })
        .collect();
    let result = consume(rxs);
    let mut total = ProcCounters::default();
    for h in handles {
        total.merge(&h.join().expect("spmd process panicked"));
    }
    (result, total)
}

/// Build the simulator's home map from a program's partitions: the owner
/// *process*'s node becomes the home node.
pub fn home_map_for<P: SpmdProgram + ?Sized>(
    program: &P,
    nodes: usize,
    procs_per_node: usize,
    block_bytes: u64,
) -> memhier_sim::HomeMap {
    let mut map = memhier_sim::HomeMap::new(nodes, block_bytes);
    for (start, end, pid) in program.partitions() {
        let node = (pid / procs_per_node).min(nodes - 1);
        // Align outward to block boundaries so a block is wholly owned.
        let s = start / block_bytes * block_bytes;
        let e = end.div_ceil(block_bytes) * block_bytes;
        map.register_clamped(s, e, node);
    }
    map
}

/// Element stride helper re-exported for workloads computing partition
/// byte-ranges.
pub const ELEM_BYTES: u64 = CELL_BYTES;

/// Test helper: a context with a collecting sink and no real barrier, plus
/// a drain function returning the emitted events.
#[cfg(any(test, feature = "test-util"))]
pub fn test_ctx(pid: usize) -> (SpmdCtx, impl FnOnce(SpmdCtx) -> Vec<MemEvent>) {
    let ctx = SpmdCtx::new(pid, TraceSink::Collect(Vec::new()), None);
    (ctx, |ctx: SpmdCtx| ctx.finish().1)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        procs: usize,
    }

    impl SpmdProgram for Toy {
        fn processes(&self) -> usize {
            self.procs
        }
        fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
            for i in 0..10u64 {
                ctx.read(pid as u64 * 1024 + i * 8);
                ctx.compute(3);
            }
            ctx.barrier();
            ctx.write(pid as u64 * 1024);
        }
        fn partitions(&self) -> Vec<(u64, u64, usize)> {
            (0..self.procs)
                .map(|p| (p as u64 * 1024, p as u64 * 1024 + 1024, p))
                .collect()
        }
        fn name(&self) -> &str {
            "toy"
        }
    }

    #[test]
    fn counters_accumulate() {
        let c = run_spmd(Arc::new(Toy { procs: 4 }));
        assert_eq!(c.reads, 40);
        assert_eq!(c.writes, 4);
        assert_eq!(c.compute, 120);
        assert_eq!(c.barriers, 4);
        let rho = c.rho();
        assert!((rho - 44.0 / 164.0).abs() < 1e-12);
    }

    #[test]
    fn collect_preserves_order_and_counts() {
        let out = collect_events(Arc::new(Toy { procs: 2 }));
        assert_eq!(out.len(), 2);
        for (events, c) in &out {
            // 10 reads + coalesced computes + barrier + 1 write.
            assert_eq!(c.mem_refs(), 11);
            let reads = events
                .iter()
                .filter(|e| matches!(e, MemEvent::Read(_)))
                .count();
            assert_eq!(reads, 10);
            let barriers = events
                .iter()
                .filter(|e| matches!(e, MemEvent::Barrier))
                .count();
            assert_eq!(barriers, 1);
            // Barrier must come before the final write.
            let bpos = events
                .iter()
                .position(|e| matches!(e, MemEvent::Barrier))
                .unwrap();
            let wpos = events
                .iter()
                .position(|e| matches!(e, MemEvent::Write(_)))
                .unwrap();
            assert!(bpos < wpos);
        }
    }

    #[test]
    fn compute_coalesces() {
        let (mut ctx, drain) = test_ctx(0);
        ctx.compute(3);
        ctx.compute(4);
        ctx.read(0);
        ctx.compute(1);
        let ev = drain(ctx);
        assert_eq!(
            ev,
            vec![
                MemEvent::Compute(7),
                MemEvent::Read(0),
                MemEvent::Compute(1)
            ]
        );
    }

    #[test]
    fn stream_mode_delivers_everything() {
        let (counts, c) = stream_spmd(Arc::new(Toy { procs: 3 }), |rxs| {
            let mut n = 0u64;
            // Drain fairly: round-robin until all disconnect.
            let mut open: Vec<_> = rxs.into_iter().map(Some).collect();
            while open.iter().any(Option::is_some) {
                for slot in open.iter_mut() {
                    if let Some(rx) = slot {
                        match rx.recv_timeout(std::time::Duration::from_millis(50)) {
                            Ok(batch) => n += batch.len() as u64,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => *slot = None,
                            Err(_) => {}
                        }
                    }
                }
            }
            n
        });
        // Every event arrives: reads + writes + barrier + compute events.
        assert!(counts >= (c.mem_refs() + c.barriers));
        assert_eq!(c.mem_refs(), 33);
    }

    #[test]
    fn home_map_respects_partitions() {
        let toy = Toy { procs: 4 };
        // 4 processes on 2 nodes of 2.
        let map = home_map_for(&toy, 2, 2, 256);
        assert_eq!(map.home(0), 0); // pid 0 → node 0
        assert_eq!(map.home(1030), 0); // pid 1 → node 0
        assert_eq!(map.home(2050), 1); // pid 2 → node 1
        assert_eq!(map.home(3080), 1); // pid 3 → node 1
    }
}
