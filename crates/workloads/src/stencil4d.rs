//! A QCD-style 4-D nearest-neighbor stencil with halo exchange.
//!
//! Lattice-QCD codes sweep a 4-D space-time lattice applying a local
//! operator that couples each site to its eight nearest neighbors (±1 in
//! each of the four dimensions, periodic boundaries).  This kernel
//! reproduces that reference pattern: an `L⁴` field of doubles is relaxed
//! for a fixed number of sweeps under the conservative 9-point average
//!
//! ```text
//! dst[s] = C0·src[s] + C1·Σ_{µ=±t,±x,±y,±z} src[s+µ],   C0 + 8·C1 = 1
//! ```
//!
//! Processes own contiguous slabs of `t`-planes; reads of the two boundary
//! planes of each slab reach the neighboring owners — the halo exchange.
//! A barrier separates sweeps (the halo must be complete before the next
//! sweep reads it), and the coefficient choice conserves the field sum,
//! which the tests verify numerically.

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Center weight; `C0 + 8·C1 = 1` makes the sweep conservative.
const C0: f64 = 0.2;
/// Neighbor weight.
const C1: f64 = 0.1;
/// Non-memory instructions charged per site update: 9 multiplies, 8 adds,
/// and ~3 of address arithmetic the traced loads don't account.
const SITE_COMPUTE: u32 = 20;

/// The 4-D stencil instance: two lattice fields, double-buffered by sweep
/// parity.
pub struct Stencil4dProgram {
    procs: usize,
    l: usize,
    iterations: usize,
    /// Field read by even sweeps, written by odd sweeps.
    a: TracedArray<f64>,
    /// Field written by even sweeps, read by odd sweeps.
    b: TracedArray<f64>,
}

impl Stencil4dProgram {
    /// Build an `l⁴` lattice initialized from `seed`, relaxed for
    /// `iterations` sweeps by `procs` processes (`procs` must divide `l`).
    pub fn random_field(l: usize, iterations: usize, procs: usize, seed: u64) -> Arc<Self> {
        assert!(l >= 2, "lattice extent must be at least 2");
        assert!(
            l.is_multiple_of(procs),
            "processes ({procs}) must divide the lattice extent ({l})"
        );
        let sites = l * l * l * l;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field: Vec<f64> = (0..sites).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut sp = AddressSpace::default();
        let a = TracedArray::new_with(sp.alloc(sites), sites, |i| field[i]);
        let b = TracedArray::new_with(sp.alloc(sites), sites, |_| 0.0);
        Arc::new(Stencil4dProgram {
            procs,
            l,
            iterations,
            a,
            b,
        })
    }

    #[inline]
    fn idx(&self, t: usize, x: usize, y: usize, z: usize) -> usize {
        ((t * self.l + x) * self.l + y) * self.l + z
    }

    /// The field holding the final sweep's output.
    fn result_field(&self) -> &TracedArray<f64> {
        if self.iterations.is_multiple_of(2) {
            &self.a
        } else {
            &self.b
        }
    }

    /// Untraced sum of the result field (for conservation checks).
    pub fn result_sum(&self) -> f64 {
        let f = self.result_field();
        (0..f.len()).map(|i| f.get_silent(i)).sum()
    }

    /// Untraced sum of the initial field — valid only before running
    /// (sweeps overwrite both buffers); tests capture it up front.
    pub fn initial_sum(&self) -> f64 {
        (0..self.a.len()).map(|i| self.a.get_silent(i)).sum()
    }
}

impl SpmdProgram for Stencil4dProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let l = self.l;
        let planes = l / self.procs;
        let t0 = pid * planes;
        for sweep in 0..self.iterations {
            let (src, dst) = if sweep % 2 == 0 {
                (&self.a, &self.b)
            } else {
                (&self.b, &self.a)
            };
            for t in t0..t0 + planes {
                let (tm, tp) = ((t + l - 1) % l, (t + 1) % l);
                for x in 0..l {
                    let (xm, xp) = ((x + l - 1) % l, (x + 1) % l);
                    for y in 0..l {
                        let (ym, yp) = ((y + l - 1) % l, (y + 1) % l);
                        for z in 0..l {
                            let (zm, zp) = ((z + l - 1) % l, (z + 1) % l);
                            let center = src.get(ctx, self.idx(t, x, y, z));
                            let halo = src.get(ctx, self.idx(tm, x, y, z))
                                + src.get(ctx, self.idx(tp, x, y, z))
                                + src.get(ctx, self.idx(t, xm, y, z))
                                + src.get(ctx, self.idx(t, xp, y, z))
                                + src.get(ctx, self.idx(t, x, ym, z))
                                + src.get(ctx, self.idx(t, x, yp, z))
                                + src.get(ctx, self.idx(t, x, y, zm))
                                + src.get(ctx, self.idx(t, x, y, zp));
                            dst.set(ctx, self.idx(t, x, y, z), C0 * center + C1 * halo);
                            ctx.compute(SITE_COMPUTE);
                        }
                    }
                }
            }
            // Halo exchange point: neighbors must not read this slab's
            // boundary planes until the sweep that produced them is done.
            ctx.barrier();
        }
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        let planes = self.l / self.procs;
        let plane_cells = self.l * self.l * self.l;
        let mut v = Vec::with_capacity(2 * self.procs);
        for pid in 0..self.procs {
            let lo = pid * planes * plane_cells;
            let hi = (pid + 1) * planes * plane_cells;
            v.push((self.a.addr_of(lo), self.a.addr_of(hi), pid));
            v.push((self.b.addr_of(lo), self.b.addr_of(hi), pid));
        }
        v
    }

    fn name(&self) -> &str {
        "Stencil4D"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn sweep_conserves_field_sum() {
        let p = Stencil4dProgram::random_field(6, 3, 2, 7);
        let before = p.initial_sum();
        run_spmd(Arc::clone(&p));
        let after = p.result_sum();
        assert!(
            (before - after).abs() < 1e-9 * before.abs().max(1.0),
            "sum drifted: {before} -> {after}"
        );
    }

    #[test]
    fn partition_independent_result() {
        let sums: Vec<f64> = [1usize, 2, 4]
            .iter()
            .map(|&procs| {
                let p = Stencil4dProgram::random_field(4, 2, procs, 11);
                run_spmd(Arc::clone(&p));
                p.result_sum()
            })
            .collect();
        assert_eq!(sums[0].to_bits(), sums[1].to_bits());
        assert_eq!(sums[0].to_bits(), sums[2].to_bits());
    }

    #[test]
    fn reference_counts_match_geometry() {
        let (l, iters, procs) = (4usize, 2usize, 2usize);
        let c = run_spmd(Stencil4dProgram::random_field(l, iters, procs, 3));
        let sites = (l * l * l * l) as u64;
        assert_eq!(c.reads, iters as u64 * sites * 9);
        assert_eq!(c.writes, iters as u64 * sites);
        assert_eq!(c.barriers, (iters * procs) as u64);
        // ρ ≈ 10/(10+20) — the target memory-reference density.
        assert!((c.rho() - 1.0 / 3.0).abs() < 0.01, "rho {}", c.rho());
    }

    #[test]
    fn slab_partitions_cover_both_fields() {
        let p = Stencil4dProgram::random_field(4, 1, 4, 1);
        let parts = p.partitions();
        assert_eq!(parts.len(), 8);
        let covered: u64 = parts.iter().map(|(s, e, _)| e - s).sum();
        assert_eq!(covered, 2 * 256 * 8);
    }
}
