//! A streaming scan: the α → 1 corner of the stack-distance model.
//!
//! Each process owns a contiguous chunk of a large array and computes a
//! running (wrapping) prefix sum over it, writing every partial into a
//! second array; the next pass scans the previous pass's output, with the
//! roles of the two arrays swapped.  Every cell is touched exactly once
//! per pass and never revisited, so reuse distances equal the working-set
//! size — the pathological "no temporal locality" stream that defeats any
//! cache smaller than the arrays.
//!
//! Cross-process traffic: at the start of every pass after the first, each
//! process seeds its running sum with the *last* output cell of its left
//! neighbor (wrapping around), a carry-propagation read that lands in
//! remote memory on clustered platforms.

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray};
use std::sync::Arc;

/// Non-memory instructions per element: one add, plus loop and address
/// bookkeeping.
const ELEM_COMPUTE: u32 = 3;

/// The streaming-scan instance (double-buffered by pass parity).
pub struct StreamProgram {
    procs: usize,
    elems: usize,
    passes: usize,
    /// Initial data; read by even passes, written by odd passes.
    a: TracedArray<u64>,
    /// Written by even passes, read by odd passes.
    b: TracedArray<u64>,
}

/// Deterministic initial value for cell `i` (a splitmix-style hash, so the
/// scan results are nontrivial without an RNG).
fn seed_cell(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl StreamProgram {
    /// Build a scan over `elems` cells for `passes` passes by `procs`
    /// processes (`procs` must divide `elems`).
    pub fn new(elems: usize, passes: usize, procs: usize) -> Arc<Self> {
        assert!(
            elems.is_multiple_of(procs),
            "processes ({procs}) must divide the element count ({elems})"
        );
        assert!(passes >= 1);
        let mut sp = AddressSpace::default();
        let a = TracedArray::new_with(sp.alloc(elems), elems, seed_cell);
        let b = TracedArray::new(sp.alloc(elems), elems);
        Arc::new(StreamProgram {
            procs,
            elems,
            passes,
            a,
            b,
        })
    }

    fn chunk(&self) -> usize {
        self.elems / self.procs
    }

    /// The array holding the final pass's output.
    fn result_array(&self) -> &TracedArray<u64> {
        if self.passes % 2 == 1 {
            &self.b
        } else {
            &self.a
        }
    }

    /// Untraced replication of the whole computation — the expected final
    /// output, for verification.
    pub fn expected(&self) -> Vec<u64> {
        let mut src: Vec<u64> = (0..self.elems).map(seed_cell).collect();
        let mut dst = vec![0u64; self.elems];
        let chunk = self.chunk();
        for pass in 0..self.passes {
            for pid in 0..self.procs {
                let lo = pid * chunk;
                let mut running = if pass == 0 {
                    0
                } else {
                    let left = (pid + self.procs - 1) % self.procs;
                    src[left * chunk + chunk - 1]
                };
                for i in lo..lo + chunk {
                    running = running.wrapping_add(src[i]);
                    dst[i] = running;
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        src
    }

    /// Untraced snapshot of the final output.
    pub fn result(&self) -> Vec<u64> {
        self.result_array().snapshot()
    }
}

impl SpmdProgram for StreamProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let chunk = self.chunk();
        let lo = pid * chunk;
        for pass in 0..self.passes {
            let (src, dst) = if pass % 2 == 0 {
                (&self.a, &self.b)
            } else {
                (&self.b, &self.a)
            };
            // Carry-propagation read from the left neighbor's chunk.
            let mut running = if pass == 0 {
                0
            } else {
                let left = (pid + self.procs - 1) % self.procs;
                src.get(ctx, left * chunk + chunk - 1)
            };
            for i in lo..lo + chunk {
                running = running.wrapping_add(src.get(ctx, i));
                dst.set(ctx, i, running);
                ctx.compute(ELEM_COMPUTE);
            }
            // The neighbor's carry cell must be final before the next pass
            // reads it.
            ctx.barrier();
        }
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        let chunk = self.chunk();
        let mut v = Vec::with_capacity(2 * self.procs);
        for pid in 0..self.procs {
            let (lo, hi) = (pid * chunk, (pid + 1) * chunk);
            v.push((self.a.addr_of(lo), self.a.addr_of(hi), pid));
            v.push((self.b.addr_of(lo), self.b.addr_of(hi), pid));
        }
        v
    }

    fn name(&self) -> &str {
        "Stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn scan_matches_untraced_replication() {
        for procs in [1usize, 2, 4] {
            let p = StreamProgram::new(256, 3, procs);
            let want = p.expected();
            run_spmd(Arc::clone(&p));
            assert_eq!(p.result(), want, "procs = {procs}");
        }
    }

    #[test]
    fn touch_once_reference_counts() {
        let (elems, passes, procs) = (512usize, 2usize, 2usize);
        let c = run_spmd(StreamProgram::new(elems, passes, procs));
        // Per pass: one read + one write per element, plus the carry reads
        // (one per process per pass after the first).
        let carries = (procs * (passes - 1)) as u64;
        assert_eq!(c.reads, (elems * passes) as u64 + carries);
        assert_eq!(c.writes, (elems * passes) as u64);
        assert_eq!(c.barriers, (passes * procs) as u64);
        // ρ ≈ 2/(2+3) = 0.4.
        assert!((c.rho() - 0.4).abs() < 0.01, "rho {}", c.rho());
    }

    #[test]
    fn single_pass_is_a_plain_prefix_sum() {
        let p = StreamProgram::new(64, 1, 1);
        run_spmd(Arc::clone(&p));
        let out = p.result();
        let mut acc = 0u64;
        for (i, v) in out.iter().enumerate() {
            acc = acc.wrapping_add(seed_cell(i));
            assert_eq!(*v, acc, "cell {i}");
        }
    }
}
