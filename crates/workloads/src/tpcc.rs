//! A synthetic commercial (TPC-C-like) workload.
//!
//! The paper characterizes TPC-C as an aside in §5.2: α = 1.73,
//! β = 1222.66, ρ = 0.36 — locality an order of magnitude worse (β over
//! 10×) than any of the scientific kernels.  Real TPC-C traces are
//! proprietary, so we synthesize a stream with the published parameters
//! (DESIGN.md substitution 3): each process draws stack distances from the
//! target `(α, β)` distribution over a mix of a **private region**
//! (its own warehouse data) and a **shared region** (the common tables),
//! with a TPC-C-ish 30% write ratio and compute padding tuned to ρ ≈ 0.36.

use crate::spmd::{SpmdCtx, SpmdProgram};
use crate::traced::{AddressSpace, TracedArray, CELL_BYTES};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Paper-published TPC-C locality parameters.
pub const TPCC_ALPHA: f64 = 1.73;
/// See [`TPCC_ALPHA`].
pub const TPCC_BETA: f64 = 1222.66;
/// See [`TPCC_ALPHA`].
pub const TPCC_RHO: f64 = 0.36;

/// The synthetic commercial workload instance.
pub struct TpccProgram {
    procs: usize,
    /// Simulated references per process.
    refs_per_proc: usize,
    /// Private per-process database slices.
    private: TracedArray<u64>,
    /// Cells per private slice.
    private_cells: usize,
    /// Shared tables.
    shared: TracedArray<u64>,
    seed: u64,
}

/// Fraction of accesses into the shared region.
const SHARED_MIX: f64 = 0.2;
/// Fraction of accesses that are writes.
const WRITE_MIX: f64 = 0.3;

impl TpccProgram {
    /// Build with `db_cells` cells per process region (plus a shared
    /// region of the same size) and `refs_per_proc` accesses per process.
    pub fn new(db_cells: usize, refs_per_proc: usize, procs: usize, seed: u64) -> Arc<Self> {
        assert!(db_cells >= 16);
        let mut sp = AddressSpace::default();
        let private =
            TracedArray::new_with(sp.alloc(db_cells * procs), db_cells * procs, |i| i as u64);
        let shared = TracedArray::new_with(sp.alloc(db_cells), db_cells, |i| i as u64);
        Arc::new(TpccProgram {
            procs,
            refs_per_proc,
            private,
            private_cells: db_cells,
            shared,
            seed,
        })
    }
}

/// An LRU-stack distance sampler over a bounded index set (the classic
/// stack-model generator, kept here so the workload crate needs no
/// dependency on the analysis crate).
struct StackSampler {
    alpha: f64,
    beta_cells: f64,
    stack: Vec<usize>,
    next: usize,
    max: usize,
}

impl StackSampler {
    /// `max` counts 64-byte lines; β converts from bytes to lines.
    fn new(alpha: f64, beta_bytes: f64, max_lines: usize) -> Self {
        StackSampler {
            alpha,
            beta_cells: beta_bytes / (CELL_BYTES * 8) as f64,
            stack: Vec::new(),
            next: 0,
            max: max_lines.max(1),
        }
    }

    /// Draw the next cell index to access.
    fn next_index(&mut self, rng: &mut ChaCha8Rng) -> usize {
        let u: f64 = rng.gen();
        let d = (self.beta_cells * ((1.0 - u).powf(-1.0 / (self.alpha - 1.0)) - 1.0)).min(1e12)
            as usize;
        if d < self.stack.len() {
            let v = self.stack.remove(d);
            self.stack.insert(0, v);
            v
        } else if self.next < self.max {
            let v = self.next;
            self.next += 1;
            self.stack.insert(0, v);
            v
        } else {
            // Footprint exhausted: recycle the coldest entry.
            let v = self.stack.pop().expect("nonempty stack");
            self.stack.insert(0, v);
            v
        }
    }
}

/// Cells per 64-byte cache line: sampled stack distances are drawn at
/// line granularity so that a line-granular trace analyzer measures the
/// intended `(α, β)` (the model's β is denominated in bytes).
const CELLS_PER_LINE: usize = 8;

impl SpmdProgram for TpccProgram {
    fn processes(&self) -> usize {
        self.procs
    }

    fn run(&self, pid: usize, ctx: &mut SpmdCtx) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ (pid as u64).wrapping_mul(0xA5A5));
        // Samplers operate on 64-byte lines; β converts from bytes to
        // lines inside StackSampler via the line size.
        let mut private =
            StackSampler::new(TPCC_ALPHA, TPCC_BETA, self.private_cells / CELLS_PER_LINE);
        let mut shared =
            StackSampler::new(TPCC_ALPHA, TPCC_BETA, self.shared.len() / CELLS_PER_LINE);
        let base = pid * self.private_cells;
        // Compute padding: ρ = refs/(refs+compute) ⇒ compute per ref =
        // (1−ρ)/ρ ≈ 1.78; accumulate fractionally.
        let per_ref = (1.0 - TPCC_RHO) / TPCC_RHO;
        let mut carry = 0.0f64;
        for t in 0..self.refs_per_proc {
            let go_shared = rng.gen::<f64>() < SHARED_MIX;
            let write = rng.gen::<f64>() < WRITE_MIX;
            if go_shared {
                // One cell within the sampled line, varying to touch the
                // whole line over time.
                let line = shared.next_index(&mut rng);
                let i = (line * CELLS_PER_LINE + (t % CELLS_PER_LINE)).min(self.shared.len() - 1);
                if write {
                    let v = self.shared.get(ctx, i);
                    self.shared.set(ctx, i, v.wrapping_add(1));
                } else {
                    let _ = self.shared.get(ctx, i);
                }
            } else {
                let line = private.next_index(&mut rng);
                let i = base
                    + (line * CELLS_PER_LINE + (t % CELLS_PER_LINE)).min(self.private_cells - 1);
                if write {
                    let v = self.private.get(ctx, i);
                    self.private.set(ctx, i, v.wrapping_add(1));
                } else {
                    let _ = self.private.get(ctx, i);
                }
            }
            carry += per_ref * if write { 2.0 } else { 1.0 };
            let k = carry as u32;
            if k > 0 {
                ctx.compute(k);
                carry -= k as f64;
            }
            // A "transaction boundary" barrier every 4096 references keeps
            // the SPMD processes loosely coupled, like the batched
            // transaction commits of an OLTP system.
            if t % 4096 == 4095 {
                ctx.barrier();
            }
        }
        ctx.barrier();
    }

    fn partitions(&self) -> Vec<(u64, u64, usize)> {
        let mut v = Vec::new();
        for pid in 0..self.procs {
            let lo = pid * self.private_cells;
            let hi = (pid + 1) * self.private_cells;
            v.push((self.private.addr_of(lo), self.private.addr_of(hi), pid));
        }
        // Shared tables interleave (unregistered → fallback homes).
        v
    }

    fn name(&self) -> &str {
        "TPC-C"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;

    #[test]
    fn rho_close_to_published() {
        let c = run_spmd(TpccProgram::new(4096, 20_000, 2, 1));
        let rho = c.rho();
        assert!(
            (rho - TPCC_RHO).abs() < 0.03,
            "rho = {rho}, want ≈ {TPCC_RHO}"
        );
    }

    #[test]
    fn write_fraction_near_mix() {
        let c = run_spmd(TpccProgram::new(4096, 20_000, 1, 2));
        let wf = c.writes as f64 / c.mem_refs() as f64;
        // Writes are double-counted (read-modify-write), so the observed
        // store share is below the 30% transaction mix.
        assert!(wf > 0.1 && wf < 0.35, "write fraction {wf}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = run_spmd(TpccProgram::new(1024, 5_000, 2, 9));
        let b = run_spmd(TpccProgram::new(1024, 5_000, 2, 9));
        assert_eq!(a, b);
    }

    #[test]
    fn barriers_every_batch() {
        let c = run_spmd(TpccProgram::new(1024, 8192, 2, 3));
        // 8192 refs → batch barriers at t = 4095 and 8191, plus the final
        // barrier: 3 per process × 2 processes.
        assert_eq!(c.barriers, 6, "got {}", c.barriers);
    }

    #[test]
    fn sampler_respects_footprint() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut s = StackSampler::new(1.2, 8000.0, 100);
        for _ in 0..20_000 {
            let i = s.next_index(&mut rng);
            assert!(i < 100);
        }
        assert!(s.stack.len() <= 100);
    }
}
