//! Instrumented shared arrays.
//!
//! [`TracedArray<T>`] is the workloads' only window onto shared data: every
//! `get`/`set` goes through the process's [`crate::spmd::SpmdCtx`], which
//! emits the corresponding [`memhier_sim::MemEvent`] — the same role MINT's
//! binary instrumentation plays for the paper's simulators.
//!
//! Storage is a `Vec<AtomicU64>` accessed with `Ordering::Relaxed`: the
//! kernels are barrier-synchronized with disjoint writes inside each phase,
//! and the real `std::sync::Barrier` between phases provides the
//! happens-before edges, so relaxed atomics are sufficient and keep the
//! code free of `unsafe` (see the Rust Atomics and Locks guidance on
//! fence-synchronized relaxed data).

use crate::spmd::SpmdCtx;
use std::sync::atomic::{AtomicU64, Ordering};

/// Element types storable in a traced cell (bit-packed into a `u64`).
pub trait Scalar: Copy + Send + Sync + 'static {
    /// Pack into cell bits.
    fn to_bits64(self) -> u64;
    /// Unpack from cell bits.
    fn from_bits64(bits: u64) -> Self;
}

impl Scalar for f64 {
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl Scalar for u64 {
    fn to_bits64(self) -> u64 {
        self
    }
    fn from_bits64(bits: u64) -> Self {
        bits
    }
}

impl Scalar for u32 {
    fn to_bits64(self) -> u64 {
        self as u64
    }
    fn from_bits64(bits: u64) -> Self {
        bits as u32
    }
}

impl Scalar for i64 {
    fn to_bits64(self) -> u64 {
        self as u64
    }
    fn from_bits64(bits: u64) -> Self {
        bits as i64
    }
}

/// A shared, instrumented array of `T` with a fixed simulated base address.
///
/// Every element occupies 8 simulated bytes (one cell), so the element at
/// index `i` lives at `base + 8·i` in the simulated address space.
pub struct TracedArray<T: Scalar> {
    base: u64,
    cells: Vec<AtomicU64>,
    _marker: std::marker::PhantomData<T>,
}

/// Simulated bytes per element.
pub const CELL_BYTES: u64 = 8;

impl<T: Scalar> TracedArray<T> {
    /// Allocate `len` elements at simulated address `base`, initialized by
    /// `init(i)` (initialization is *untraced*: the paper measures the
    /// parallel phase, not program loading).
    pub fn new_with(base: u64, len: usize, init: impl Fn(usize) -> T) -> Self {
        let cells = (0..len)
            .map(|i| AtomicU64::new(init(i).to_bits64()))
            .collect();
        TracedArray {
            base,
            cells,
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocate `len` zero-bit elements at `base`.
    pub fn new(base: u64, len: usize) -> Self
    where
        T: Default,
    {
        Self::new_with(base, len, |_| T::default())
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Simulated base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Simulated end address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.cells.len() as u64 * CELL_BYTES
    }

    /// Simulated address of element `i`.
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base + i as u64 * CELL_BYTES
    }

    /// Traced load.
    pub fn get(&self, ctx: &mut SpmdCtx, i: usize) -> T {
        ctx.read(self.addr_of(i));
        T::from_bits64(self.cells[i].load(Ordering::Relaxed))
    }

    /// Traced store.
    pub fn set(&self, ctx: &mut SpmdCtx, i: usize, v: T) {
        ctx.write(self.addr_of(i));
        self.cells[i].store(v.to_bits64(), Ordering::Relaxed);
    }

    /// Untraced load — for result verification and initialization only.
    pub fn get_silent(&self, i: usize) -> T {
        T::from_bits64(self.cells[i].load(Ordering::Relaxed))
    }

    /// Untraced store — for initialization only.
    pub fn set_silent(&self, i: usize, v: T) {
        self.cells[i].store(v.to_bits64(), Ordering::Relaxed);
    }

    /// Untraced snapshot of the whole array.
    pub fn snapshot(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get_silent(i)).collect()
    }
}

/// A simple bump allocator for simulated addresses, block-aligned so that
/// distinct arrays never share a coherence block.
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
    align: u64,
}

impl AddressSpace {
    /// Conventional program base (arbitrary, nonzero to catch stray zeros).
    pub const DEFAULT_BASE: u64 = 0x1000_0000;

    /// New allocator starting at `DEFAULT_BASE`, aligning to `align` bytes.
    pub fn new(align: u64) -> Self {
        assert!(align.is_power_of_two());
        AddressSpace {
            next: Self::DEFAULT_BASE,
            align,
        }
    }

    /// Reserve space for `len` elements; returns the base address.
    pub fn alloc(&mut self, len: usize) -> u64 {
        let base = self.next;
        let bytes = len as u64 * CELL_BYTES;
        self.next = (base + bytes + self.align - 1) & !(self.align - 1);
        base
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        // 4 KiB alignment keeps arrays on distinct pages *and* blocks.
        Self::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::test_ctx;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(f64::from_bits64(3.25f64.to_bits64()), 3.25);
        assert_eq!(u64::from_bits64(u64::MAX.to_bits64()), u64::MAX);
        assert_eq!(u32::from_bits64(7u32.to_bits64()), 7);
        assert_eq!(i64::from_bits64((-9i64).to_bits64()), -9);
    }

    #[test]
    fn addresses_and_layout() {
        let a: TracedArray<f64> = TracedArray::new(0x1000, 10);
        assert_eq!(a.len(), 10);
        assert_eq!(a.addr_of(0), 0x1000);
        assert_eq!(a.addr_of(3), 0x1000 + 24);
        assert_eq!(a.end(), 0x1000 + 80);
    }

    #[test]
    fn traced_access_emits_events() {
        let a: TracedArray<u64> = TracedArray::new(0x1000, 4);
        let (mut ctx, drain) = test_ctx(0);
        a.set(&mut ctx, 2, 99);
        assert_eq!(a.get(&mut ctx, 2), 99);
        let events = drain(ctx);
        use memhier_sim::MemEvent;
        assert_eq!(
            events,
            vec![MemEvent::Write(0x1010), MemEvent::Read(0x1010)]
        );
    }

    #[test]
    fn silent_access_does_not_trace() {
        let a: TracedArray<u64> = TracedArray::new_with(0, 4, |i| i as u64);
        let (ctx, drain) = test_ctx(0);
        assert_eq!(a.get_silent(3), 3);
        a.set_silent(3, 7);
        assert_eq!(a.get_silent(3), 7);
        assert!(drain(ctx).is_empty());
        assert_eq!(a.snapshot(), vec![0, 1, 2, 7]);
    }

    #[test]
    fn address_space_is_aligned_and_disjoint() {
        let mut sp = AddressSpace::default();
        let a = sp.alloc(100);
        let b = sp.alloc(1);
        let c = sp.alloc(1000);
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 800);
        assert!(c >= b + 8);
    }
}
