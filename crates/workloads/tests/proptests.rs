//! Property-based tests: the kernels stay correct for arbitrary seeds and
//! (valid) geometry, and their traces uphold the SPMD contract.

use memhier_sim::MemEvent;
use memhier_workloads::edge::EdgeProgram;
use memhier_workloads::fft::FftProgram;
use memhier_workloads::lu::LuProgram;
use memhier_workloads::radix::RadixProgram;
use memhier_workloads::spmd::{collect_events, run_spmd};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn radix_sorts_any_seed(
        seed in any::<u64>(),
        procs in prop_oneof![Just(1usize), Just(2), Just(4)],
        key_bits in 8u32..16,
    ) {
        let p = RadixProgram::new(512, 16, key_bits, procs, seed);
        run_spmd(Arc::clone(&p));
        let out = p.result();
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        let mut expect = p.input().to_vec();
        expect.sort_unstable();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn lu_factors_any_seed(
        seed in any::<u64>(),
        procs in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let p = LuProgram::random_dd(16, 4, procs, seed);
        run_spmd(Arc::clone(&p));
        let err = p.verify_error();
        prop_assert!(err < 1e-8, "LU error {err}");
    }

    #[test]
    fn fft_parseval_holds(seed in any::<u64>(), procs in prop_oneof![Just(1usize), Just(2)]) {
        // Energy conservation: ||X||² = N · ||x||².
        let p = FftProgram::random_input(64, procs, seed);
        let e_in: f64 = (0..64)
            .map(|i| {
                let (re, im) = p.input_at(i);
                re * re + im * im
            })
            .sum();
        run_spmd(Arc::clone(&p));
        let e_out: f64 = p.output().iter().map(|&(re, im)| re * re + im * im).sum();
        prop_assert!(
            (e_out - 64.0 * e_in).abs() < 1e-6 * (1.0 + e_out),
            "Parseval: {e_out} vs {}",
            64.0 * e_in
        );
    }

    #[test]
    fn edge_matches_reference_any_size(
        procs in prop_oneof![Just(1usize), Just(2), Just(4)],
        dim_factor in 1usize..4,
        iters in 1usize..3,
    ) {
        // 8, 16, 24 are all divisible by 1, 2 and 4.
        let dim = 8 * dim_factor;
        let p = EdgeProgram::synthetic(dim, iters, procs);
        run_spmd(Arc::clone(&p));
        prop_assert_eq!(p.edges(), p.reference());
    }

    #[test]
    fn traces_respect_barrier_contract(
        procs in prop_oneof![Just(2usize), Just(4)],
        seed in any::<u64>(),
    ) {
        // Every process emits the same number of barriers (bulk-synchronous
        // SPMD), and barrier counts match across processes.
        let p = RadixProgram::new(256, 16, 12, procs, seed);
        let events = collect_events(p);
        let counts: Vec<usize> = events
            .iter()
            .map(|(ev, _)| ev.iter().filter(|e| matches!(e, MemEvent::Barrier)).count())
            .collect();
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        prop_assert!(counts[0] > 0);
    }

    #[test]
    fn compute_events_never_zero(seed in any::<u64>()) {
        let p = RadixProgram::new(256, 16, 12, 2, seed);
        let events = collect_events(p);
        for (ev, _) in events {
            for e in ev {
                if let MemEvent::Compute(k) = e {
                    prop_assert!(k > 0);
                }
            }
        }
    }
}
