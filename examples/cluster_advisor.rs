//! Cluster advisor: the paper's headline use case — "what is an optimal
//! cluster platform for a given budget and a given type of workload?"
//! (§1, question 1; §6 case studies 1–2).
//!
//! ```sh
//! cargo run --example cluster_advisor            # $5,000 and $20,000
//! cargo run --example cluster_advisor -- 12000   # custom budget
//! ```

use memhier::core::model::AnalyticModel;
use memhier::core::params;
use memhier::cost::{optimize, recommend, CandidateSpace, PriceTable};

fn main() {
    let budgets: Vec<f64> = {
        let args: Vec<f64> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![5000.0, 20_000.0]
        } else {
            args
        }
    };

    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let space = CandidateSpace::paper_market();
    let mut workloads = params::paper_workloads();
    workloads.push(params::workload_tpcc());

    for budget in budgets {
        println!("=== Budget: ${budget:.0} ===");
        for w in &workloads {
            let rec = recommend(w);
            let ranked = optimize(budget, w, &model, &prices, &space);
            match ranked.first() {
                Some(best) => {
                    println!("{:7} -> {}", w.name, best.spec.describe());
                    println!(
                        "          ${:.0}, predicted E(Instr) = {:.3e} s; rule of thumb: {:?}",
                        best.cost, best.e_instr_seconds, rec.platform
                    );
                }
                None => println!("{:7} -> nothing affordable", w.name),
            }
        }
        println!();
    }
}
