//! Quickstart: evaluate the analytic model for one platform and workload,
//! and print the per-level breakdown.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use memhier::core::model::AnalyticModel;
use memhier::core::params::{self, configs};

fn main() {
    let model = AnalyticModel::default();

    // The paper's Table-2 characterization of the FFT kernel
    // (α = 1.21, β = 103.26, ρ = 0.20).
    let fft = params::workload_fft();

    // C5: a 4-processor SMP with 256 KB caches and 128 MB memory (Table 3).
    let cluster = configs::c5();

    let p = model.evaluate(&cluster, &fft).expect("model evaluates");

    println!("Platform : {}", cluster.describe());
    println!(
        "Workload : {} (alpha={}, beta={}, rho={})",
        fft.name, fft.locality.alpha, fft.locality.beta, fft.rho
    );
    println!();
    println!("Average memory access time T : {:.2} cycles", p.t_cycles);
    println!("Per-processor CPI            : {:.2}", p.per_proc_cpi);
    println!(
        "E(Instr)                     : {:.4} cycles = {:.3e} s",
        p.e_instr_cycles, p.e_instr_seconds
    );
    println!();
    println!("Hierarchy breakdown:");
    for l in &p.levels {
        println!(
            "  {:8} reach={:<9.6} service={:>6.0}cy effective={:>8.1}cy utilization={:.3}",
            l.name, l.reach_prob, l.service_cycles, l.effective_cycles, l.utilization
        );
    }

    // Compare the three platform families at equal processor count (q = 4).
    println!();
    println!("Same workload, q = 4 processors arranged three ways:");
    use memhier::core::machine::{MachineSpec, NetworkKind};
    use memhier::core::platform::ClusterSpec;
    let smp = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
    let cow = ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, NetworkKind::Atm155);
    let clump = ClusterSpec::cluster(MachineSpec::new(2, 256, 64, 200.0), 2, NetworkKind::Atm155);
    for c in [smp, cow, clump] {
        let e = model.evaluate_or_inf(&c, &fft);
        println!("  {:45} E(Instr) = {:.3e} s", c.describe(), e);
    }
}
