//! Full program-driven simulation: run the instrumented Radix kernel on a
//! cluster of workstations and print what the memory hierarchy saw — the
//! same pipeline the paper's MINT + back-end simulators implement (§5.1).
//! A [`TimeSeriesCollector`] observer rides along to show utilization over
//! time (see docs/OBSERVABILITY.md).
//!
//! ```sh
//! cargo run --release --example simulate_cluster
//! cargo run --release --example simulate_cluster -- atm   # switch network
//! ```

use memhier::core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier::core::platform::ClusterSpec;
use memhier::sim::backend::ClusterBackend;
use memhier::sim::engine::{ProcSource, SimSession};
use memhier::sim::observe::TimeSeriesCollector;
use memhier::workloads::registry::{Workload, WorkloadKind};
use memhier::workloads::spmd::{home_map_for, stream_spmd};

fn main() {
    let net = match std::env::args().nth(1).as_deref() {
        Some("atm") => NetworkKind::Atm155,
        Some("eth10") => NetworkKind::Ethernet10,
        _ => NetworkKind::Ethernet100,
    };
    let cluster = ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, net);
    let workload = Workload::medium(WorkloadKind::Radix);
    println!("Simulating Radix (medium) on {}", cluster.describe());

    // 1. Instantiate the SPMD program with one process per processor.
    let program = workload.instantiate(cluster.total_procs() as usize);

    // 2. Home map: each process's partition lives in its node's memory.
    let home = home_map_for(&*program, cluster.machines as usize, 1, 256);

    // 3. Back-end with the paper's §5.1 latencies, driven by the engine —
    //    with a windowed metrics observer attached.
    let backend = ClusterBackend::new(&cluster, LatencyParams::paper(), home);
    let (out, counters) = stream_spmd(program, |rxs| {
        SimSession::new(backend)
            .with_sources(rxs.into_iter().map(ProcSource::Channel).collect())
            .observe(TimeSeriesCollector::new(250_000))
            .run()
    });
    let report = &out.report;

    println!();
    println!("instructions        : {}", report.total_instructions);
    println!(
        "memory references   : {} (rho = {:.3})",
        report.total_refs,
        counters.rho()
    );
    println!("wall clock          : {} cycles", report.wall_cycles);
    println!(
        "E(Instr)            : {:.4} cycles = {:.3e} s",
        report.e_instr_cycles, report.e_instr_seconds
    );
    println!();
    println!("served by:");
    let l = report.levels;
    println!("  L1 cache          : {}", l.l1_hits);
    println!("  local memory      : {}", l.local_memory);
    println!("  remote node       : {}", l.remote_clean);
    println!("  remotely cached   : {}", l.remote_dirty);
    println!("  disk page-ins     : {}", l.disk);
    println!();
    println!(
        "coherence traffic   : {:.1}% of {} bytes on the wire",
        report.traffic.coherence_fraction() * 100.0,
        report.traffic.data_bytes + report.traffic.coherence_bytes
    );
    println!(
        "barriers            : {} rounds, {} cycles waited",
        report.barriers, report.barrier_wait_cycles
    );

    // 4. What the observer saw: network saturation window by window.
    let series = out
        .observer::<TimeSeriesCollector>()
        .expect("collector attached above")
        .series();
    println!();
    println!(
        "network utilization by {}-cycle window (L1 hit rate in parens, \
         every {}th window):",
        series.window_cycles,
        series.windows.len().div_ceil(16).max(1)
    );
    let step = series.windows.len().div_ceil(16).max(1);
    for w in series.windows.iter().step_by(step) {
        println!(
            "  [{:>10}..{:>10})  net {:>5.1}%  bus {:>5.1}%  ({:.3})",
            w.start_cycle,
            w.end_cycle,
            w.network_utilization * 100.0,
            w.bus_utilization * 100.0,
            w.l1_hit_rate
        );
    }
}
