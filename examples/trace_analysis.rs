//! Trace analysis: run an instrumented kernel, compute its exact LRU
//! stack-distance distribution, fit the paper's (α, β) locality model, and
//! draw the measured-vs-fitted CDF as ASCII art (the paper's §5.2
//! methodology, end to end).
//!
//! ```sh
//! cargo run --release --example trace_analysis          # LU
//! cargo run --release --example trace_analysis -- radix # any kernel
//! ```

use memhier::trace::{fit_locality, StackDistanceAnalyzer};
use memhier::workloads::registry::{Workload, WorkloadKind};
use memhier::workloads::spmd::stream_spmd;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("fft") => WorkloadKind::Fft,
        Some("radix") => WorkloadKind::Radix,
        Some("edge") => WorkloadKind::Edge,
        Some("tpcc") => WorkloadKind::Tpcc,
        _ => WorkloadKind::Lu,
    };
    let workload = Workload::medium(kind);
    println!("Tracing {:?} at medium size on one process...", kind.name());

    let program = workload.instantiate(1);
    let (analyzer, counters) = stream_spmd(program, |rxs| {
        let rx = rxs.into_iter().next().unwrap();
        let mut an = StackDistanceAnalyzer::new(64);
        while let Ok(batch) = rx.recv() {
            for ev in batch {
                if let Some(addr) = ev.address() {
                    an.access(addr);
                }
            }
        }
        an
    });

    let hist = analyzer.histogram();
    let cdf = hist.cdf_points();
    let fit = fit_locality(&cdf).expect("enough points to fit");

    println!("references : {}", counters.mem_refs());
    println!("rho        : {:.3}", counters.rho());
    println!(
        "unique data: {} KB",
        analyzer.unique_blocks() as u64 * 64 / 1024
    );
    println!(
        "fit        : alpha = {:.3}, beta = {:.1} bytes (R^2 = {:.4})",
        fit.alpha, fit.beta, fit.r_squared
    );
    println!();

    // ASCII CDF: measured (*) vs fitted model (-).
    println!("P(x) vs stack distance (log x):  * measured   - fitted");
    let width = 60usize;
    let max_x = cdf.last().map(|p| p.0).unwrap_or(1.0);
    for row in 0..12 {
        let p_level = 1.0 - row as f64 / 12.0;
        let mut line = vec![' '; width + 1];
        #[allow(clippy::needless_range_loop)]
        for col in 0..=width {
            let x = 64.0 * (max_x / 64.0).powf(col as f64 / width as f64);
            let fitted = 1.0 - (x / fit.beta + 1.0).powf(-(fit.alpha - 1.0));
            if (fitted - p_level).abs() < 1.0 / 24.0 {
                line[col] = '-';
            }
            let measured = cdf
                .iter()
                .take_while(|pt| pt.0 <= x)
                .last()
                .map(|pt| pt.1)
                .unwrap_or(0.0);
            if (measured - p_level).abs() < 1.0 / 24.0 {
                line[col] = '*';
            }
        }
        println!("{:4.2} |{}", p_level, line.iter().collect::<String>());
    }
    println!("      {}", "-".repeat(width));
    let hi_label = if max_x >= 1048576.0 {
        format!("{:.0}MB", max_x / 1048576.0)
    } else {
        format!("{:.0}KB", max_x / 1024.0)
    };
    println!("      64B{hi_label:>width$}", width = width - 3);
}
