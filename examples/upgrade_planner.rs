//! Upgrade planner: the paper's §1 question 2 — "what is a cost-effective
//! way to upgrade or scale an existing cluster platform for a given budget
//! increase and a given type of workload?" (§6 case study 3).
//!
//! ```sh
//! cargo run --example upgrade_planner             # $2,500 increase
//! cargo run --example upgrade_planner -- 4000     # custom increase
//! ```

use memhier::core::machine::{MachineSpec, NetworkKind};
use memhier::core::model::AnalyticModel;
use memhier::core::params;
use memhier::core::platform::ClusterSpec;
use memhier::cost::{plan_upgrade, PriceTable};

fn main() {
    let extra: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500.0);

    // The aging lab cluster: two 32 MB workstations on thin Ethernet.
    let existing = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 32, 200.0),
        2,
        NetworkKind::Ethernet10,
    );
    println!("Existing cluster : {}", existing.describe());
    println!("Budget increase  : ${extra:.0}");
    println!();

    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();

    for w in params::paper_workloads() {
        let before = model.evaluate_or_inf(&existing, &w);
        let plans = plan_upgrade(&existing, extra, &w, &model, &prices);
        let best = &plans[0];
        println!("{:6}: {}", w.name, best.actions.join(", "));
        println!(
            "        ${:.0}; E(Instr) {:.3e} -> {:.3e} s  ({:.2}x faster)",
            best.cost,
            before,
            best.e_instr_seconds,
            before / best.e_instr_seconds
        );
        // The paper's §6 guidance for reference.
        let rec = memhier::cost::recommend(&w);
        println!("        section-6 guidance: {}", rec.upgrade_advice);
        println!();
    }
}
