//! # memhier
//!
//! A full reproduction of Du & Zhang, *"The Impact of Memory Hierarchies
//! on Cluster Computing"* (IPPS 1999): an analytical execution-time model
//! for cluster memory hierarchies, the program-driven simulator it was
//! validated against, instrumented SPMD workloads (FFT, LU, Radix, EDGE,
//! synthetic TPC-C), a trace-analysis toolchain (exact stack distances +
//! locality fitting), and a budget-constrained cluster optimizer.
//!
//! This facade crate re-exports the six sub-crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `memhier-core` | locality model, M/D/1 contention, platform models, `E(Instr)` |
//! | [`trace`] | `memhier-trace` | stack distances, histograms, `(α, β)` fitting, synthetic traces |
//! | [`sim`] | `memhier-sim` | caches, snooping/directory/hybrid coherence, bus/switch networks, engine |
//! | [`workloads`] | `memhier-workloads` | instrumented SPMD kernels |
//! | [`cost`] | `memhier-cost` | price table, optimizer, upgrade planner, §6 recommendations |
//! | [`mod@bench`] | `memhier-bench` | `Scenario` API, experiment harness, parallel sweep runner |
//!
//! ## Quickstart
//!
//! ```
//! use memhier::core::model::AnalyticModel;
//! use memhier::core::params::{self, configs};
//!
//! let model = AnalyticModel::default();
//! let fft = params::workload_fft();
//! let prediction = model.evaluate(&configs::c5(), &fft).unwrap();
//! println!("E(Instr) on C5 = {:.3e} s", prediction.e_instr_seconds);
//! ```
//!
//! See `examples/` for end-to-end scenarios (budget advisor, trace
//! analysis, full simulation) and the `memhier-bench` crate for the
//! binaries that regenerate every table and figure of the paper.

pub use memhier_bench as bench;
pub use memhier_core as core;
pub use memhier_cost as cost;
pub use memhier_sim as sim;
pub use memhier_trace as trace;
pub use memhier_workloads as workloads;

/// One error type for the whole workspace surface.
///
/// Sub-crates keep their own precise errors ([`core::ModelError`] chief
/// among them); this enum is the top-level catch-all a binary or consumer
/// can bubble everything into via `?`.
#[derive(Debug)]
#[non_exhaustive]
pub enum MemhierError {
    /// Analytic-model validation or evaluation failure.
    Model(memhier_core::ModelError),
    /// Scenario construction or parsing failure (bad config/workload/
    /// size names, malformed JSON or compact form).
    Scenario(memhier_bench::ScenarioError),
    /// Optimizer request/response failure (bad optimize/recommend
    /// requests, unsimulatable workloads).
    Cost(memhier_cost::CostError),
    /// Trace format, streaming-analysis, or fit-request failure.
    Trace(memhier_trace::TraceError),
    /// Filesystem/IO failure (metrics or trace export, artifact writes).
    Io(std::io::Error),
    /// JSON serialization/deserialization failure.
    Json(serde_json::Error),
    /// Anything else (flag parsing, malformed inputs).
    Invalid(String),
}

impl std::fmt::Display for MemhierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemhierError::Model(e) => write!(f, "model error: {e}"),
            MemhierError::Scenario(e) => write!(f, "scenario error: {e}"),
            MemhierError::Cost(e) => write!(f, "cost error: {e}"),
            MemhierError::Trace(e) => write!(f, "trace error: {e}"),
            MemhierError::Io(e) => write!(f, "io error: {e}"),
            MemhierError::Json(e) => write!(f, "json error: {e}"),
            MemhierError::Invalid(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for MemhierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemhierError::Model(e) => Some(e),
            MemhierError::Scenario(e) => Some(e),
            MemhierError::Cost(e) => Some(e),
            MemhierError::Trace(e) => Some(e),
            MemhierError::Io(e) => Some(e),
            MemhierError::Json(e) => Some(e),
            MemhierError::Invalid(_) => None,
        }
    }
}

impl From<memhier_core::ModelError> for MemhierError {
    fn from(e: memhier_core::ModelError) -> Self {
        MemhierError::Model(e)
    }
}

impl From<memhier_bench::ScenarioError> for MemhierError {
    fn from(e: memhier_bench::ScenarioError) -> Self {
        MemhierError::Scenario(e)
    }
}

impl From<memhier_cost::CostError> for MemhierError {
    fn from(e: memhier_cost::CostError) -> Self {
        MemhierError::Cost(e)
    }
}

impl From<memhier_trace::TraceError> for MemhierError {
    fn from(e: memhier_trace::TraceError) -> Self {
        MemhierError::Trace(e)
    }
}

impl From<std::io::Error> for MemhierError {
    fn from(e: std::io::Error) -> Self {
        MemhierError::Io(e)
    }
}

impl From<serde_json::Error> for MemhierError {
    fn from(e: serde_json::Error) -> Self {
        MemhierError::Json(e)
    }
}

impl From<String> for MemhierError {
    fn from(msg: String) -> Self {
        MemhierError::Invalid(msg)
    }
}

impl From<&str> for MemhierError {
    fn from(msg: &str) -> Self {
        MemhierError::Invalid(msg.to_string())
    }
}

/// The blessed public surface in one import:
/// `use memhier::prelude::*;`.
pub mod prelude {
    pub use crate::MemhierError;
    pub use memhier_bench::{Scenario, ScenarioBuilder, ScenarioError, Sizes, SweepPlan};
    pub use memhier_core::model::{LevelBreakdown, LevelDiagnostic, ModelReport};
    pub use memhier_core::{
        AnalyticModel, ArrivalModel, ClusterSpec, LatencyParams, Locality, MachineSpec, ModelError,
        NetworkKind, NetworkTopology, PlatformKind, Prediction, TailMode, WorkloadParams,
    };
    pub use memhier_cost::{
        CostError, OptimizeReport, OptimizeRequest, RecommendReport, RecommendRequest, WorkloadSpec,
    };
    pub use memhier_sim::{
        ClusterBackend, EventTracer, HomeMap, MemEvent, MetricsSeries, NopObserver, ProcSource,
        ProtocolParams, ServiceLevel, SessionOutput, SimObserver, SimReport, SimSession,
        TimeSeriesCollector, TraceLog,
    };
    pub use memhier_workloads::{Workload, WorkloadKind};
}
