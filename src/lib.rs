//! # memhier
//!
//! A full reproduction of Du & Zhang, *"The Impact of Memory Hierarchies
//! on Cluster Computing"* (IPPS 1999): an analytical execution-time model
//! for cluster memory hierarchies, the program-driven simulator it was
//! validated against, instrumented SPMD workloads (FFT, LU, Radix, EDGE,
//! synthetic TPC-C), a trace-analysis toolchain (exact stack distances +
//! locality fitting), and a budget-constrained cluster optimizer.
//!
//! This facade crate re-exports the five sub-crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `memhier-core` | locality model, M/D/1 contention, platform models, `E(Instr)` |
//! | [`trace`] | `memhier-trace` | stack distances, histograms, `(α, β)` fitting, synthetic traces |
//! | [`sim`] | `memhier-sim` | caches, snooping/directory/hybrid coherence, bus/switch networks, engine |
//! | [`workloads`] | `memhier-workloads` | instrumented SPMD kernels |
//! | [`cost`] | `memhier-cost` | price table, optimizer, upgrade planner, §6 recommendations |
//!
//! ## Quickstart
//!
//! ```
//! use memhier::core::model::AnalyticModel;
//! use memhier::core::params::{self, configs};
//!
//! let model = AnalyticModel::default();
//! let fft = params::workload_fft();
//! let prediction = model.evaluate(&configs::c5(), &fft).unwrap();
//! println!("E(Instr) on C5 = {:.3e} s", prediction.e_instr_seconds);
//! ```
//!
//! See `examples/` for end-to-end scenarios (budget advisor, trace
//! analysis, full simulation) and the `memhier-bench` crate for the
//! binaries that regenerate every table and figure of the paper.

pub use memhier_core as core;
pub use memhier_cost as cost;
pub use memhier_sim as sim;
pub use memhier_trace as trace;
pub use memhier_workloads as workloads;
