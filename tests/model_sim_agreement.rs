//! Cross-crate integration: the analytic model must track the simulator in
//! *shape* — orderings across configurations and applications — which is
//! the paper's transferable claim (absolute agreement is calibrated; see
//! EXPERIMENTS.md).

use memhier::core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier::core::model::AnalyticModel;
use memhier::core::platform::ClusterSpec;
use memhier::sim::backend::ClusterBackend;
use memhier::sim::engine::{ProcSource, SimSession};
use memhier::workloads::registry::{Workload, WorkloadKind};
use memhier::workloads::spmd::{home_map_for, stream_spmd};

fn sim_seconds(kind: WorkloadKind, cluster: &ClusterSpec) -> f64 {
    let program = Workload::small(kind).instantiate(cluster.total_procs() as usize);
    let home = home_map_for(
        &*program,
        cluster.machines as usize,
        cluster.machine.n_procs as usize,
        256,
    );
    let backend = ClusterBackend::new(cluster, LatencyParams::paper(), home);
    let (report, _) = stream_spmd(program, |rxs| {
        SimSession::new(backend)
            .with_sources(rxs.into_iter().map(ProcSource::Channel).collect())
            .run()
            .report
    });
    report.e_instr_seconds
}

fn paper_params(kind: WorkloadKind) -> memhier::core::locality::WorkloadParams {
    match kind {
        WorkloadKind::Fft => memhier::core::params::workload_fft(),
        WorkloadKind::Lu => memhier::core::params::workload_lu(),
        WorkloadKind::Radix => memhier::core::params::workload_radix(),
        WorkloadKind::Edge => memhier::core::params::workload_edge(),
        WorkloadKind::Tpcc => memhier::core::params::workload_tpcc(),
        // WorkloadKind is non_exhaustive; this test only names the five
        // paper programs.
        other => panic!("no paper parameters for {other:?}"),
    }
}

fn model_seconds(kind: WorkloadKind, cluster: &ClusterSpec) -> f64 {
    AnalyticModel::default().evaluate_or_inf(cluster, &paper_params(kind))
}

/// Rendered per-level [`memhier::core::model::ModelReport`] for assertion
/// messages, so a disagreement is explainable level by level.
fn model_diag(kind: WorkloadKind, cluster: &ClusterSpec) -> String {
    AnalyticModel::default()
        .evaluate(cluster, &paper_params(kind))
        .map(|p| p.report().render())
        .unwrap_or_else(|e| format!("(model unevaluable: {e})"))
}

#[test]
fn both_agree_more_processors_help_on_smps() {
    let smp2 = ClusterSpec::single(MachineSpec::new(2, 256, 128, 200.0));
    let smp4 = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
    for kind in [WorkloadKind::Fft, WorkloadKind::Edge] {
        let (s2, s4) = (sim_seconds(kind, &smp2), sim_seconds(kind, &smp4));
        let (m2, m4) = (model_seconds(kind, &smp2), model_seconds(kind, &smp4));
        assert!(s4 < s2, "{kind:?} sim: 4P {s4} should beat 2P {s2}");
        assert!(m4 < m2, "{kind:?} model: 4P {m4} should beat 2P {m2}");
    }
}

#[test]
fn both_agree_on_network_ordering_for_cow() {
    // Model and simulator must agree that 10 Mb Ethernet is the worst
    // cluster network (paper Figure 3's dominant feature).
    let mk = |net| ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, net);
    for kind in [WorkloadKind::Fft, WorkloadKind::Radix] {
        let s_slow = sim_seconds(kind, &mk(NetworkKind::Ethernet10));
        let s_fast = sim_seconds(kind, &mk(NetworkKind::Atm155));
        let m_slow = model_seconds(kind, &mk(NetworkKind::Ethernet10));
        let m_fast = model_seconds(kind, &mk(NetworkKind::Atm155));
        assert!(
            s_slow > s_fast,
            "{kind:?} sim: Eth10 {s_slow} vs ATM {s_fast}"
        );
        assert!(
            m_slow > m_fast,
            "{kind:?} model: Eth10 {m_slow} vs ATM {m_fast}"
        );
    }
}

#[test]
fn both_agree_smp_beats_slow_cow() {
    // §6 / Table-1 claim: the short hierarchy wins against a slow-network
    // cluster of equal processor count.
    let smp = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
    let cow = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 64, 200.0),
        4,
        NetworkKind::Ethernet10,
    );
    for kind in WorkloadKind::PAPER {
        let (ss, sc) = (sim_seconds(kind, &smp), sim_seconds(kind, &cow));
        let (ms, mc) = (model_seconds(kind, &smp), model_seconds(kind, &cow));
        assert!(ss < sc, "{kind:?} sim: SMP {ss} vs 10Mb COW {sc}");
        assert!(ms < mc, "{kind:?} model: SMP {ms} vs 10Mb COW {mc}");
    }
}

#[test]
fn model_within_two_orders_of_magnitude_of_sim() {
    // A very loose absolute sanity band for the *uncalibrated* model with
    // paper Table-2 parameters against small-size simulations: same units,
    // same ballpark.  (Tight comparisons happen, calibrated, in the
    // experiment binaries at medium/paper sizes.)
    let configs = [
        ClusterSpec::single(MachineSpec::new(2, 256, 64, 200.0)),
        ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0)),
    ];
    for cluster in &configs {
        for kind in WorkloadKind::PAPER {
            let s = sim_seconds(kind, cluster);
            let m = model_seconds(kind, cluster);
            let ratio = m / s;
            assert!(
                (0.01..100.0).contains(&ratio),
                "{kind:?} on {}: model {m} vs sim {s} (ratio {ratio})\n{}",
                cluster.describe(),
                model_diag(kind, cluster)
            );
        }
    }
}
