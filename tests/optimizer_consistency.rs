//! Cross-crate integration: optimizer and upgrade planner consistency with
//! the model and the price table.

use memhier::core::model::AnalyticModel;
use memhier::core::params;
use memhier::cost::{optimize, plan_upgrade, CandidateSpace, PriceTable};

#[test]
fn reported_numbers_are_reproducible() {
    // Whatever the optimizer reports must re-derive exactly from the model
    // and prices.
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let ranked = optimize(
        15_000.0,
        &params::workload_radix(),
        &model,
        &prices,
        &CandidateSpace::paper_market(),
    );
    assert!(!ranked.is_empty());
    for r in ranked.iter().take(10) {
        let cost = prices.cluster_cost(&r.spec).expect("pricable");
        assert_eq!(cost, r.cost);
        let e = model.evaluate_or_inf(&r.spec, &params::workload_radix());
        assert!((e - r.e_instr_seconds).abs() / e < 1e-12);
    }
}

#[test]
fn optimum_is_actually_minimal() {
    // Exhaustively verify the winner beats every other affordable config.
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let space = CandidateSpace::paper_market();
    let w = params::workload_edge();
    let budget = 10_000.0;
    let ranked = optimize(budget, &w, &model, &prices, &space);
    let best = &ranked[0];
    for cand in space.candidates() {
        if let Some(cost) = prices.cluster_cost(&cand) {
            if cost <= budget {
                let e = model.evaluate_or_inf(&cand, &w);
                assert!(
                    e >= best.e_instr_seconds - 1e-18,
                    "{} (E = {e}) beats reported best {} (E = {})",
                    cand.describe(),
                    best.spec.describe(),
                    best.e_instr_seconds
                );
            }
        }
    }
}

#[test]
fn upgrades_monotone_in_budget() {
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let existing = {
        use memhier::core::machine::{MachineSpec, NetworkKind};
        use memhier::core::platform::ClusterSpec;
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 32, 200.0),
            2,
            NetworkKind::Ethernet10,
        )
    };
    let w = params::workload_fft();
    let mut prev_best = f64::INFINITY;
    for budget in [0.0, 500.0, 2000.0, 8000.0] {
        let plans = plan_upgrade(&existing, budget, &w, &model, &prices);
        let best = plans[0].e_instr_seconds;
        assert!(
            best <= prev_best + 1e-18,
            "budget {budget}: best {best} worse than smaller budget's {prev_best}"
        );
        for p in &plans {
            assert!(p.cost <= budget, "plan exceeds budget: {p:?}");
        }
        prev_best = best;
    }
}

#[test]
fn optimizer_follows_section6_for_extreme_workloads() {
    use memhier::core::locality::WorkloadParams;
    let model = AnalyticModel::default();
    let prices = PriceTable::circa_1999();
    let space = CandidateSpace::paper_market();
    // A pathological memory-bound, poor-locality workload must avoid
    // shared-bus Ethernet entirely: the winner is either a single SMP
    // (§6's Radix rule) or a switch-network cluster whose per-port
    // contention the model dilutes (§6 notes the SMP's processor count
    // "could be limited").
    let nasty = WorkloadParams::new("nasty", 1.05, 500.0, 0.6).unwrap();
    let ranked = optimize(25_000.0, &nasty, &model, &prices, &space);
    let best = &ranked[0];
    let acceptable = best.spec.machines == 1
        || best.spec.network == Some(memhier::core::machine::NetworkKind::Atm155);
    assert!(
        acceptable,
        "memory-bound/poor-locality picked a bus-network cluster: {}",
        best.spec.describe()
    );
}
