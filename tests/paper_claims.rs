//! The paper's headline qualitative claims, checked end to end with the
//! published Table-2 parameters.

use memhier::core::machine::{MachineSpec, NetworkKind};
use memhier::core::model::AnalyticModel;
use memhier::core::params;
use memhier::core::platform::ClusterSpec;
use memhier::cost::{recommend, RecommendedPlatform};

#[test]
fn fft_ethernet_vs_atm_gap_is_large() {
    // §6: "the execution times of the FFT program were 4 times higher on a
    // slow Ethernet of workstations than that on a fast ATM network of
    // workstations" (4 × 64 MB Ethernet vs 3 × 32 MB ATM, same cost).
    let model = AnalyticModel::default();
    let w = params::workload_fft();
    let eth = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 64, 200.0),
        4,
        NetworkKind::Ethernet10,
    );
    let atm = ClusterSpec::cluster(MachineSpec::new(1, 256, 32, 200.0), 3, NetworkKind::Atm155);
    let ratio = model.evaluate_or_inf(&eth, &w) / model.evaluate_or_inf(&atm, &w);
    assert!(
        ratio > 2.0,
        "paper reports ~4x; we must at least reproduce a multi-x gap, got {ratio:.2}"
    );
    assert!(ratio < 40.0, "gap implausibly large: {ratio:.2}");
}

#[test]
fn hierarchy_length_is_the_sensitive_factor() {
    // The abstract's claim: "the length of memory hierarchy is the most
    // sensitive factor" — for every kernel, at equal q and equal aggregate
    // memory, the 3-level SMP beats the 5-level slow-network cluster.
    let model = AnalyticModel::default();
    let smp = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
    let cow = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 32, 200.0),
        4,
        NetworkKind::Ethernet10,
    );
    for w in params::paper_workloads() {
        let (e_smp, e_cow) = (
            model.evaluate_or_inf(&smp, &w),
            model.evaluate_or_inf(&cow, &w),
        );
        assert!(e_smp < e_cow, "{}: SMP {e_smp} vs slow COW {e_cow}", w.name);
    }
}

#[test]
fn recommendation_matrix_matches_section_6() {
    let cases = [
        ("LU", RecommendedPlatform::ManyWorkstationsSlowNetwork),
        ("FFT", RecommendedPlatform::FewWorkstationsFastNetwork),
        ("EDGE", RecommendedPlatform::WorkstationsLargeMemory),
        ("Radix", RecommendedPlatform::SingleSmp),
        ("TPC-C", RecommendedPlatform::SmpOrFastClusterOfSmps),
    ];
    let mut all = params::paper_workloads();
    all.push(params::workload_tpcc());
    for w in &all {
        let expect = cases.iter().find(|c| c.0 == w.name).unwrap().1;
        assert_eq!(recommend(w).platform, expect, "{}", w.name);
    }
}

#[test]
fn upgrading_memory_helps_good_locality_network_helps_poor() {
    // §6's upgrade principles, checked through the model directly: for
    // EDGE (good locality) growing memory beats upgrading the network at
    // equal-ish spend; for FFT (poor locality) the reverse.
    let model = AnalyticModel::default();
    let base = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 32, 200.0),
        4,
        NetworkKind::Ethernet10,
    );
    let mut more_mem = base.clone();
    more_mem.machine.memory_bytes = 128 << 20;
    let mut faster_net = base.clone();
    faster_net.network = Some(NetworkKind::Atm155);

    let fft = params::workload_fft();
    let gain_mem = model.evaluate_or_inf(&base, &fft) / model.evaluate_or_inf(&more_mem, &fft);
    let gain_net = model.evaluate_or_inf(&base, &fft) / model.evaluate_or_inf(&faster_net, &fft);
    assert!(
        gain_net > gain_mem,
        "FFT: network upgrade ({gain_net:.2}x) should beat memory upgrade ({gain_mem:.2}x)"
    );
}

#[test]
fn tpcc_wants_the_shortest_hierarchy() {
    // §5.2/§6: the commercial workload's locality is an order of magnitude
    // worse; among equal-cost-ish options the SMP (or clustered SMPs over
    // a fast switch) must win by a wide margin over Ethernet workstations.
    let model = AnalyticModel::default();
    let w = params::workload_tpcc();
    let smp = ClusterSpec::single(MachineSpec::new(4, 512, 128, 200.0));
    let cow = ClusterSpec::cluster(
        MachineSpec::new(1, 512, 128, 200.0),
        4,
        NetworkKind::Ethernet100,
    );
    let (e_smp, e_cow) = (
        model.evaluate_or_inf(&smp, &w),
        model.evaluate_or_inf(&cow, &w),
    );
    assert!(
        e_smp < e_cow,
        "TPC-C: SMP {e_smp} should beat the Ethernet COW {e_cow}"
    );
    // And the qualitative §6 rule itself puts TPC-C on SMPs.
    assert_eq!(
        recommend(&w).platform,
        RecommendedPlatform::SmpOrFastClusterOfSmps
    );
}
