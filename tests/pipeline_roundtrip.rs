//! Cross-crate integration: workload → trace → fit → model pipeline.

use memhier::core::model::AnalyticModel;
use memhier::trace::{fit_locality, StackDistanceAnalyzer, SyntheticTrace};
use memhier::workloads::registry::{Workload, WorkloadKind};
use memhier::workloads::spmd::stream_spmd;

/// Characterize a small workload: stream its 1-process trace through the
/// exact analyzer and fit (α, β).
fn fit_kernel(kind: WorkloadKind) -> (f64, f64, f64, f64) {
    let program = Workload::small(kind).instantiate(1);
    let (an, counters) = stream_spmd(program, |rxs| {
        let rx = rxs.into_iter().next().unwrap();
        let mut an = StackDistanceAnalyzer::new(64);
        while let Ok(batch) = rx.recv() {
            for ev in batch {
                if let Some(a) = ev.address() {
                    an.access(a);
                }
            }
        }
        an
    });
    let fit = fit_locality(&an.histogram().cdf_points()).expect("fit");
    (fit.alpha, fit.beta, fit.r_squared, counters.rho())
}

#[test]
fn every_kernel_fits_the_locality_model() {
    for kind in WorkloadKind::PAPER {
        let (alpha, beta, r2, rho) = fit_kernel(kind);
        assert!(alpha > 1.0 && alpha < 4.0, "{kind:?}: alpha {alpha}");
        assert!(beta > 1.0, "{kind:?}: beta {beta}");
        assert!(r2 > 0.5, "{kind:?}: poor fit R^2 = {r2}");
        assert!(rho > 0.05 && rho < 0.95, "{kind:?}: rho {rho}");
    }
}

#[test]
fn fitted_parameters_drive_the_model() {
    // The measured characterization of any kernel must produce a finite,
    // positive prediction on every paper configuration.
    let (alpha, beta, _, rho) = fit_kernel(WorkloadKind::Lu);
    let w = memhier::core::locality::WorkloadParams::new("LU*", alpha, beta, rho).unwrap();
    let model = AnalyticModel::default();
    for cfg in memhier::core::params::configs::all_configs() {
        let e = model.evaluate_or_inf(&cfg, &w);
        assert!(e.is_finite() && e > 0.0, "{:?}: {e}", cfg.name);
    }
}

#[test]
fn synthetic_trace_closes_the_loop() {
    // trace crate → analyzer → fit recovers the generator's parameters;
    // then the model evaluated with those parameters is finite.  This
    // exercises trace + core together at a scale the unit tests don't.
    let (alpha, beta) = (1.25, 150.0);
    let mut g = SyntheticTrace::new(alpha, beta, 64, 2024);
    let mut an = StackDistanceAnalyzer::new(64);
    for _ in 0..400_000 {
        an.access(g.next_address());
    }
    let fit = fit_locality(&an.histogram().cdf_points()).unwrap();
    assert!(
        (fit.alpha - alpha).abs() < 0.1,
        "alpha {} vs {alpha}",
        fit.alpha
    );
    // β is fitted in bytes; the generator's β is also bytes.
    assert!(
        (fit.beta - beta).abs() / beta < 0.5,
        "beta {} vs {beta}",
        fit.beta
    );
}

#[test]
fn radix_measures_worse_locality_than_edge() {
    // The paper's Table-2 qualitative ordering must hold for our
    // implementations: EDGE has better locality than Radix.  Single fitted
    // parameters are scale-sensitive, so compare the measured miss tails
    // directly: the fraction of references reusing beyond a 32 KB window.
    let tail = |kind: WorkloadKind| {
        let program = Workload::small(kind).instantiate(1);
        let (an, counters) = stream_spmd(program, |rxs| {
            let rx = rxs.into_iter().next().unwrap();
            let mut an = StackDistanceAnalyzer::new(64);
            while let Ok(batch) = rx.recv() {
                for ev in batch {
                    if let Some(a) = ev.address() {
                        an.access(a);
                    }
                }
            }
            an
        });
        (an.histogram().tail_at(32.0 * 1024.0), counters.rho())
    };
    let (t_edge, rho_edge) = tail(WorkloadKind::Edge);
    let (t_radix, rho_radix) = tail(WorkloadKind::Radix);
    assert!(
        t_edge < t_radix,
        "EDGE 32KB-tail {t_edge} should be below Radix's {t_radix}"
    );
    // Both are memory-heavy kernels but Radix's rho is high (paper 0.37).
    assert!(rho_radix > 0.2, "radix rho {rho_radix}");
    assert!(rho_edge > 0.2, "edge rho {rho_edge}");
}
