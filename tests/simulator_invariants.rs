//! Cross-crate integration: invariants of the full program-driven
//! simulation across all three platform families.

use memhier::core::machine::{LatencyParams, MachineSpec, NetworkKind};
use memhier::core::platform::ClusterSpec;
use memhier::sim::backend::ClusterBackend;
use memhier::sim::engine::{ProcSource, SimSession};
use memhier::sim::report::SimReport;
use memhier::workloads::registry::{Workload, WorkloadKind};
use memhier::workloads::spmd::{home_map_for, stream_spmd};

fn simulate(kind: WorkloadKind, cluster: &ClusterSpec) -> SimReport {
    let program = Workload::small(kind).instantiate(cluster.total_procs() as usize);
    let home = home_map_for(
        &*program,
        cluster.machines as usize,
        cluster.machine.n_procs as usize,
        256,
    );
    let backend = ClusterBackend::new(cluster, LatencyParams::paper(), home);
    let (report, counters) = stream_spmd(program, |rxs| {
        SimSession::new(backend)
            .with_sources(rxs.into_iter().map(ProcSource::Channel).collect())
            .run()
            .report
    });
    assert_eq!(report.total_refs, counters.mem_refs(), "refs conserved");
    assert_eq!(
        report.total_instructions,
        counters.total_instructions(),
        "instructions conserved"
    );
    report
}

fn platforms() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(MachineSpec::new(1, 256, 64, 200.0)),
        ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0)),
        ClusterSpec::cluster(
            MachineSpec::new(1, 256, 64, 200.0),
            4,
            NetworkKind::Ethernet100,
        ),
        ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, NetworkKind::Atm155),
        ClusterSpec::cluster(MachineSpec::new(2, 256, 64, 200.0), 2, NetworkKind::Atm155),
    ]
}

#[test]
fn level_counts_cover_every_reference_on_all_platforms() {
    for cluster in platforms() {
        for kind in [WorkloadKind::Fft, WorkloadKind::Radix] {
            let r = simulate(kind, &cluster);
            assert_eq!(
                r.levels.total_refs(),
                r.total_refs,
                "{kind:?} on {}: level counts must partition references",
                cluster.describe()
            );
            assert!(r.wall_cycles > 0);
            assert!(r.e_instr_cycles >= 1.0 / cluster.total_procs() as f64);
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    // The engine orders events by simulated time and the workloads are
    // seeded, so two runs must agree exactly — including level counts and
    // the wall clock.
    let cluster = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 64, 200.0),
        4,
        NetworkKind::Ethernet100,
    );
    let a = simulate(WorkloadKind::Radix, &cluster);
    let b = simulate(WorkloadKind::Radix, &cluster);
    assert_eq!(a, b);
}

#[test]
fn smp_never_touches_the_network_levels() {
    let smp = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
    for kind in WorkloadKind::PAPER {
        let r = simulate(kind, &smp);
        assert_eq!(r.levels.remote_clean, 0, "{kind:?}");
        assert_eq!(r.levels.remote_dirty, 0, "{kind:?}");
    }
}

#[test]
fn clusters_generate_remote_traffic() {
    let cow = ClusterSpec::cluster(
        MachineSpec::new(1, 256, 64, 200.0),
        4,
        NetworkKind::Ethernet100,
    );
    for kind in WorkloadKind::PAPER {
        let r = simulate(kind, &cow);
        assert!(
            r.levels.remote_clean + r.levels.remote_dirty > 0,
            "{kind:?} produced no remote traffic on a COW"
        );
    }
}

#[test]
fn faster_network_is_never_slower_for_fixed_traffic_kernels() {
    // EDGE's sharing is boundary-only and deterministic, so the network
    // ordering must be clean: Eth10 >= Eth100 >= ATM in wall time.
    let mk = |net| {
        simulate(
            WorkloadKind::Edge,
            &ClusterSpec::cluster(MachineSpec::new(1, 256, 64, 200.0), 4, net),
        )
        .wall_cycles
    };
    let (e10, e100, atm) = (
        mk(NetworkKind::Ethernet10),
        mk(NetworkKind::Ethernet100),
        mk(NetworkKind::Atm155),
    );
    assert!(e10 >= e100, "Eth10 {e10} vs Eth100 {e100}");
    assert!(e100 >= atm, "Eth100 {e100} vs ATM {atm}");
}

#[test]
fn barrier_waits_accounted() {
    // LU has serial phases (diagonal factorization): the other processes
    // must accumulate barrier wait.
    let cluster = ClusterSpec::single(MachineSpec::new(4, 256, 128, 200.0));
    let r = simulate(WorkloadKind::Lu, &cluster);
    assert!(r.barriers > 0);
    assert!(r.barrier_wait_cycles > 0);
    // Waits are bounded by total processor time.
    let total: u64 = r.proc_cycles.iter().sum();
    assert!(r.barrier_wait_cycles < total);
}
